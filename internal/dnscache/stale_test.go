package dnscache

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dohcost/internal/dnswire"
	"dohcost/internal/telemetry"
)

// tickClock is a concurrency-safe test clock (background refreshes read it
// from their own goroutines).
type tickClock struct{ sec atomic.Int64 }

func newTickClock(sec int64) *tickClock {
	c := &tickClock{}
	c.sec.Store(sec)
	return c
}
func (c *tickClock) now() time.Time { return time.Unix(c.sec.Load(), 0) }
func (c *tickClock) set(sec int64)  { c.sec.Store(sec) }

// waitUntil polls cond for up to two seconds.
func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestServeStaleAnswersWithoutUpstreamWait is the acceptance scenario: an
// expired-but-stale entry is answered from cache with zero upstream wait —
// proven by a deliberately slow upstream — while exactly one background
// refresh re-populates it, however many clients hit the stale entry
// concurrently.
func TestServeStaleAnswersWithoutUpstreamWait(t *testing.T) {
	clock := newTickClock(1000)
	up := &countingUpstream{ttl: 60}
	c := New(up, WithServeStale(5*time.Minute), withClock(clock.now))
	defer c.Close()
	m := telemetry.New()

	if _, err := c.Exchange(context.Background(), dnswire.NewQuery(1, "stale.example.", dnswire.TypeA)); err != nil {
		t.Fatal(err)
	}
	// Expire the entry (TTL 60, inserted at t=1000) and slow the upstream:
	// any foreground path that waited on it would blow the latency budget.
	clock.set(1100)
	up.delay = 300 * time.Millisecond

	const clients = 8
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(id uint16) {
			defer wg.Done()
			tx := m.Begin(telemetry.ProtoUDP)
			defer tx.Finish()
			ctx := telemetry.NewContext(context.Background(), tx)
			start := time.Now()
			resp, err := c.Exchange(ctx, dnswire.NewQuery(id, "stale.example.", dnswire.TypeA))
			if err != nil {
				t.Errorf("stale exchange: %v", err)
				return
			}
			if elapsed := time.Since(start); elapsed > 150*time.Millisecond {
				t.Errorf("stale hit took %v, must not wait on the %v upstream", elapsed, up.delay)
			}
			if len(resp.Answers) != 1 || resp.Answers[0].TTL > uint32(StaleTTL/time.Second) {
				t.Errorf("stale answer = %v, want TTL capped at %v", resp.Answers, StaleTTL)
			}
		}(uint16(i + 2))
	}
	wg.Wait()

	if got := m.Snapshot().CacheEvents["stale_hit"]; got != clients {
		t.Errorf("stale_hit events = %d, want %d", got, clients)
	}
	// Exactly one background refresh goes upstream (initial miss + refresh
	// = 2 calls), and it re-populates the entry.
	waitUntil(t, "background refresh", func() bool { return up.calls.Load() >= 2 })
	waitUntil(t, "refreshed entry", func() bool {
		resp, err := c.Exchange(context.Background(), dnswire.NewQuery(99, "stale.example.", dnswire.TypeA))
		return err == nil && len(resp.Answers) == 1 && resp.Answers[0].TTL > uint32(StaleTTL/time.Second)
	})
	if got := up.calls.Load(); got != 2 {
		t.Errorf("upstream calls = %d, want 2 (one miss + one singleflight refresh)", got)
	}
	// The freshness poll above also rode the stale path while the slow
	// refresh ran, so the stale count is a floor, not an exact value; the
	// exact per-client count is pinned by the telemetry events above.
	s := c.Stats()
	if s.StaleHits < clients || s.Refreshes != 1 || s.Prefetches != 0 || s.Misses != 1 {
		t.Errorf("stats = %+v, want ≥%d stale hits, exactly 1 refresh, 1 miss", s, clients)
	}
}

// TestServeStaleWirePath drives the stale window through ServeWire: the
// zero-alloc path serves the expired entry with StaleTTL-capped TTLs,
// reports the stale_hit outcome, and triggers the same singleflight
// refresh.
func TestServeStaleWirePath(t *testing.T) {
	clock := newTickClock(2000)
	up := &countingUpstream{ttl: 60}
	c := New(up, WithServeStale(10*time.Minute), withClock(clock.now))
	defer c.Close()
	if _, err := c.Exchange(context.Background(), dnswire.NewQuery(1, "wired.example.", dnswire.TypeA)); err != nil {
		t.Fatal(err)
	}
	clock.set(2090) // 30s past the 60s TTL

	fq, _ := fastParse(t, dnswire.NewQuery(0x7777, "wired.example.", dnswire.TypeA))
	resp, outcome, ok := c.ServeWire(nil, &fq, nil, 0)
	if !ok {
		t.Fatal("stale entry not served on the wire path")
	}
	if outcome != telemetry.CacheStaleHit {
		t.Errorf("outcome = %v, want stale_hit", outcome)
	}
	var msg dnswire.Message
	if err := msg.Unpack(resp); err != nil {
		t.Fatal(err)
	}
	if msg.ID != 0x7777 || len(msg.Answers) != 1 || msg.Answers[0].TTL != uint32(StaleTTL/time.Second) {
		t.Errorf("stale wire answer = id %#x %v, want restamped ID and TTL %d", msg.ID, msg.Answers, uint32(StaleTTL/time.Second))
	}
	waitUntil(t, "wire-path refresh", func() bool { return up.calls.Load() == 2 })

	// Past the stale window the wire path declines and the Message path
	// treats it as a plain miss.
	c2 := New(&countingUpstream{ttl: 60}, WithServeStale(time.Minute), withClock(clock.now))
	defer c2.Close()
	if _, err := c2.Exchange(context.Background(), dnswire.NewQuery(1, "gone.example.", dnswire.TypeA)); err != nil {
		t.Fatal(err)
	}
	clock.set(2090 + 3600)
	fq2, _ := fastParse(t, dnswire.NewQuery(2, "gone.example.", dnswire.TypeA))
	if _, _, ok := c2.ServeWire(nil, &fq2, nil, 0); ok {
		t.Error("entry served past the stale window")
	}
}

// TestServeStaleSurvivesFailedRefresh checks a refresh that errors leaves
// the stale entry answerable — the availability property RFC 8767 exists
// for: the upstream is down, and the cache keeps answering.
func TestServeStaleSurvivesFailedRefresh(t *testing.T) {
	clock := newTickClock(3000)
	up := &countingUpstream{ttl: 60}
	c := New(up, WithServeStale(time.Hour), withClock(clock.now))
	defer c.Close()
	if _, err := c.Exchange(context.Background(), dnswire.NewQuery(1, "down.example.", dnswire.TypeA)); err != nil {
		t.Fatal(err)
	}
	clock.set(3100)
	up.fail = true
	if _, err := c.Exchange(context.Background(), dnswire.NewQuery(2, "down.example.", dnswire.TypeA)); err != nil {
		t.Fatalf("stale hit with dead upstream: %v", err)
	}
	waitUntil(t, "failed refresh to finish", func() bool { return up.calls.Load() == 2 })
	// Still answerable afterwards; another stale hit, another refresh try.
	if _, err := c.Exchange(context.Background(), dnswire.NewQuery(3, "down.example.", dnswire.TypeA)); err != nil {
		t.Fatalf("stale hit after failed refresh: %v", err)
	}
	if s := c.Stats(); s.StaleHits != 2 {
		t.Errorf("stale hits = %d, want 2", s.StaleHits)
	}
}

// TestPrefetchRefreshesHotNamesNearExpiry checks the near-expiry prefetch:
// a name hit at least twice gets one background refresh when a hit lands
// inside the prefetch window, so a later query finds it fresh without ever
// missing.
func TestPrefetchRefreshesHotNamesNearExpiry(t *testing.T) {
	clock := newTickClock(4000)
	up := &countingUpstream{ttl: 60}
	c := New(up, WithPrefetch(10*time.Second), withClock(clock.now))
	defer c.Close()
	m := telemetry.New()
	hit := func(id uint16) {
		t.Helper()
		tx := m.Begin(telemetry.ProtoUDP)
		defer tx.Finish()
		ctx := telemetry.NewContext(context.Background(), tx)
		if _, err := c.Exchange(ctx, dnswire.NewQuery(id, "hot.example.", dnswire.TypeA)); err != nil {
			t.Fatal(err)
		}
	}
	hit(1)          // miss, insert (expires 4060)
	hit(2)          // hit far from expiry: no prefetch
	clock.set(4055) // 5s of TTL left, inside the 10s window
	hit(3)          // hot + near expiry → prefetch fires
	waitUntil(t, "prefetch refresh", func() bool { return up.calls.Load() == 2 })
	waitUntil(t, "refreshed entry", func() bool {
		resp, err := c.Exchange(context.Background(), dnswire.NewQuery(9, "hot.example.", dnswire.TypeA))
		return err == nil && resp.Answers[0].TTL > 5
	})
	// After the refresh the entry expires at 4115: a query at 4070 — past
	// the original expiry — is a fresh hit, never a miss.
	clock.set(4070)
	hit(4)
	if got := up.calls.Load(); got != 2 {
		t.Errorf("upstream calls = %d, want 2 (prefetch absorbed the would-be miss)", got)
	}
	s := c.Stats()
	if s.Prefetches != 1 || s.Refreshes != 1 || s.Misses != 1 {
		t.Errorf("stats = %+v, want exactly one prefetch refresh and no second miss", s)
	}
	if got := m.Snapshot().Prefetches; got != 1 {
		t.Errorf("telemetry prefetches = %d, want 1", got)
	}
}

// TestPrefetchWirePath checks the zero-alloc path triggers the same
// prefetch: two wire hits heat the entry, a third inside the window
// refreshes it.
func TestPrefetchWirePath(t *testing.T) {
	clock := newTickClock(5000)
	up := &countingUpstream{ttl: 60}
	c := New(up, WithPrefetch(10*time.Second), withClock(clock.now))
	defer c.Close()
	if _, err := c.Exchange(context.Background(), dnswire.NewQuery(1, "hw.example.", dnswire.TypeA)); err != nil {
		t.Fatal(err)
	}
	fq, _ := fastParse(t, dnswire.NewQuery(2, "hw.example.", dnswire.TypeA))
	for i := 0; i < 2; i++ { // heat the entry
		if _, _, ok := c.ServeWire(nil, &fq, nil, 0); !ok {
			t.Fatal("hit lost")
		}
	}
	clock.set(5055)
	if _, outcome, ok := c.ServeWire(nil, &fq, nil, 0); !ok || outcome != telemetry.CacheHit {
		t.Fatalf("near-expiry hit = %v ok=%v, want fresh hit", outcome, ok)
	}
	waitUntil(t, "wire prefetch", func() bool { return up.calls.Load() == 2 })
	if s := c.Stats(); s.Prefetches != 1 {
		t.Errorf("prefetches = %d, want 1", s.Prefetches)
	}
}

// TestNegativeEntriesNotPrefetched pins the gate: NXDOMAIN entries serve
// stale but never prefetch (refreshing a name that does not exist buys
// nothing).
func TestNegativeEntriesNotPrefetched(t *testing.T) {
	clock := newTickClock(6000)
	up := &countingUpstream{rcode: dnswire.RCodeNameError, authority: []dnswire.ResourceRecord{{
		Name: "example.", Class: dnswire.ClassINET, TTL: 600,
		Data: &dnswire.SOA{MName: "ns.example.", RName: "root.example.", Minimum: 30},
	}}}
	c := New(up, WithPrefetch(time.Minute), withClock(clock.now))
	defer c.Close()
	for i := 0; i < 4; i++ {
		if _, err := c.Exchange(context.Background(), dnswire.NewQuery(uint16(i), "nx.example.", dnswire.TypeA)); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(20 * time.Millisecond)
	if got := up.calls.Load(); got != 1 {
		t.Errorf("upstream calls = %d, want 1 (negative entries must not prefetch)", got)
	}
	if s := c.Stats(); s.Prefetches != 0 {
		t.Errorf("prefetches = %d, want 0", s.Prefetches)
	}
}

// TestPrefetchSkipsShortTTLEntries pins the amplification gate: a hot
// name whose entire TTL fits inside the prefetch window must never
// prefetch — "near expiry" is always true for it, and refreshing every
// couple of hits would multiply upstream traffic instead of saving it.
func TestPrefetchSkipsShortTTLEntries(t *testing.T) {
	clock := newTickClock(7000)
	up := &countingUpstream{ttl: 5} // 5s TTL ≤ the 10s window
	c := New(up, WithPrefetch(10*time.Second), withClock(clock.now))
	defer c.Close()
	for i := 0; i < 6; i++ { // hot by any measure, always inside the window
		if _, err := c.Exchange(context.Background(), dnswire.NewQuery(uint16(i), "short.example.", dnswire.TypeA)); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(20 * time.Millisecond)
	if got := up.calls.Load(); got != 1 {
		t.Errorf("upstream calls = %d, want 1 (short-TTL entries must not prefetch)", got)
	}
	if s := c.Stats(); s.Prefetches != 0 {
		t.Errorf("prefetches = %d, want 0", s.Prefetches)
	}
}

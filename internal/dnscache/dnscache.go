// Package dnscache provides a TTL-respecting, size-bounded cache that wraps
// any Resolver, plus in-flight query coalescing (singleflight): concurrent
// identical queries share one upstream exchange.
//
// The cache is hash-partitioned into shards, each with its own lock, LRU
// list and in-flight table, so the hit path never funnels through a global
// mutex — the property that lets a forwarding proxy serve hot names from
// many connections at full core count. Negative answers (NXDOMAIN and
// NODATA) are cached with the RFC 2308 TTL: the minimum of the authority
// SOA record's TTL and its MINIMUM field.
//
// Entries are stored as packed wire bytes with their TTL field offsets
// recorded at insert time, and are immutable from then on. A hit is served
// by copying the stored bytes, restamping the transaction ID and decaying
// the TTLs in place (ServeWire — no Unpack, no clone, no Pack), or, for
// callers that need a *dnswire.Message, by unpacking a fresh message that
// shares nothing with the stored entry. The pre-wire-path behaviour —
// *Message entries served by deep clone — remains available behind
// WithMessageEntries for comparison benchmarks.
//
// Two resilience mechanisms keep hot answers flowing when the upstream is
// slow or down. With WithServeStale, expired entries stay answerable for a
// window past expiry (RFC 8767): a stale hit is served immediately with
// StaleTTL-capped TTLs while exactly one background refresh — singleflight
// with any concurrent misses — re-populates the entry. With WithPrefetch,
// a hit on a hot entry inside the prefetch window triggers the same
// refresh before expiry, so popular names never go cold at all.
//
// The paper deliberately cleared caches between page loads to measure worst
// cases; this package is the production counterpart — and the knob for the
// cache ablation, which shows how quickly a warm cache erases the DoH
// resolution-time penalty (almost 25% of the paper's 2.18M crawl queries
// went to just fifteen names).
package dnscache

import (
	"container/list"
	"context"
	"hash/maphash"
	"sync"
	"time"

	"dohcost/internal/dnstransport"
	"dohcost/internal/dnswire"
	"dohcost/internal/telemetry"
)

// keyBufLen bounds a stack-allocated key buffer: a canonical name is at
// most 254 presentation octets, followed by four octets of type and class.
const keyBufLen = 260

// appendKey renders the cache key for (name, qtype, class): the canonical
// name followed by the big-endian type and class. Keys are plain strings so
// the hit path can look them up with a zero-copy []byte→string conversion.
func appendKey(dst []byte, name dnswire.Name, qtype dnswire.Type, class dnswire.Class) []byte {
	return appendKeyTail(append(dst, string(name)...), qtype, class)
}

// appendKeyTail appends the four type/class octets that close a key whose
// name part is already rendered (the wire fast path renders it from the
// packed question directly).
func appendKeyTail(dst []byte, qtype dnswire.Type, class dnswire.Class) []byte {
	return append(dst, byte(qtype>>8), byte(qtype), byte(class>>8), byte(class))
}

// entry is one cached response. After insertion an entry's payload is
// immutable — wire, ttlOffsets and msg are never written again — so the
// hit path may read it outside the shard lock; safety no longer depends on
// every reader remembering to deep-copy. The hits counter is the one
// mutable field, guarded by the shard lock.
type entry struct {
	key string
	// wire is the packed response, still carrying the upstream exchange's
	// transaction ID (hits restamp their own copy); ttlOffsets locate its
	// TTL fields for in-place decay. Unused in message-entry mode.
	wire       []byte
	ttlOffsets []int
	// negative records the RFC 2308 NXDOMAIN/NODATA classification, so the
	// wire hit path can label telemetry without parsing.
	negative bool
	// msg holds the response in message-entry mode (WithMessageEntries).
	msg     *dnswire.Message
	expires time.Time
	// ttl is the clamped lifetime the entry was inserted with; the
	// prefetch gate compares it against the prefetch window.
	ttl  time.Duration
	elem *list.Element
	// hits counts fresh hits since insertion — the hotness signal the
	// near-expiry prefetch gates on. Guarded by the shard lock.
	hits int
}

// Stats counts cache effectiveness, aggregated across shards. The JSON
// tags match the snake_case style of the telemetry snapshot, which
// embeds these counters in the proxy's /debug/cost report.
type Stats struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Coalesced int64 `json:"coalesced"` // queries answered by joining an in-flight exchange
	Evictions int64 `json:"evictions"`
	// StaleHits counts expired-but-stale answers served while a background
	// refresh ran (RFC 8767 serve-stale).
	StaleHits int64 `json:"stale_hits"`
	// Prefetches counts near-expiry background refreshes triggered by hits
	// on hot entries; Refreshes counts all background refreshes started
	// (prefetch + serve-stale).
	Prefetches int64 `json:"prefetches"`
	Refreshes  int64 `json:"refreshes"`
}

func (s *Stats) add(o Stats) {
	s.Hits += o.Hits
	s.Misses += o.Misses
	s.Coalesced += o.Coalesced
	s.Evictions += o.Evictions
	s.StaleHits += o.StaleHits
	s.Prefetches += o.Prefetches
	s.Refreshes += o.Refreshes
}

// flight is one in-progress upstream exchange shared by coalesced callers.
type flight struct {
	done chan struct{}
	resp *dnswire.Message
	err  error
}

// shard is one lock domain: a partition of the key space with its own LRU
// and singleflight table.
type shard struct {
	mu         sync.Mutex
	entries    map[string]*entry
	lru        *list.List // front = most recent
	flights    map[string]*flight
	stats      Stats
	maxEntries int
}

// Cache is a sharded caching resolver. Safe for concurrent use.
type Cache struct {
	upstream dnstransport.Resolver
	shards   []*shard
	seed     maphash.Seed

	// maxEntries bounds the cache across all shards (LRU eviction per
	// shard); 0 means 4096.
	maxEntries int
	// nshards is the shard count, rounded up to a power of two; 0 means 16.
	nshards int
	// minTTL/maxTTL clamp record TTLs (resolver-style cache policy).
	minTTL, maxTTL time.Duration
	// negTTL caps negative-cache TTLs and is the fallback when a negative
	// response carries no SOA (RFC 2308 leaves that response uncacheable;
	// we hold it briefly, the way production resolvers do).
	negTTL time.Duration
	// messageEntries selects the legacy *Message storage (see
	// WithMessageEntries); the default is packed wire entries.
	messageEntries bool
	// staleWindow keeps expired entries answerable this long past expiry
	// (RFC 8767 serve-stale); 0 disables.
	staleWindow time.Duration
	// prefetchWindow triggers a background refresh when a hit finds a hot
	// entry within this much of expiry; 0 disables.
	prefetchWindow time.Duration
	// refreshTimeout bounds one background refresh exchange.
	refreshTimeout time.Duration
	// tel, when set, makes background refreshes report their upstream
	// resource usage (WithTelemetry).
	tel *telemetry.Metrics
	// now is the clock, replaceable in tests.
	now func() time.Time
}

// Option configures a Cache.
type Option func(*Cache)

// WithMaxEntries bounds the cache size across all shards.
func WithMaxEntries(n int) Option { return func(c *Cache) { c.maxEntries = n } }

// WithTTLBounds clamps cached TTLs.
func WithTTLBounds(min, max time.Duration) Option {
	return func(c *Cache) { c.minTTL, c.maxTTL = min, max }
}

// WithShards sets the number of lock partitions (rounded up to a power of
// two). One shard reproduces the classic single-mutex cache; the default
// 16 keeps the hit path off any global lock.
func WithShards(n int) Option { return func(c *Cache) { c.nshards = n } }

// WithNegativeTTL caps how long NXDOMAIN/NODATA answers are cached; it is
// also the TTL used when a negative response carries no SOA.
func WithNegativeTTL(d time.Duration) Option { return func(c *Cache) { c.negTTL = d } }

// WithMessageEntries stores cached responses as unpacked *dnswire.Message
// values and serves hits by deep-cloning them — the behaviour before the
// wire fast path existed. It disables ServeWire (every query takes the
// Message path) and exists to keep the old hit path measurable:
// BenchmarkCacheHitWirePath runs both modes side by side.
func WithMessageEntries() Option { return func(c *Cache) { c.messageEntries = true } }

// WithServeStale keeps expired entries answerable for window past expiry
// (RFC 8767): a query hitting an expired-but-stale entry is answered
// immediately from memory with StaleTTL-capped TTLs while exactly one
// background refresh re-populates the entry. Both serving paths (wire and
// Message) honor the window.
func WithServeStale(window time.Duration) Option {
	return func(c *Cache) { c.staleWindow = window }
}

// WithPrefetch refreshes hot entries before they expire: when a hit finds
// an entry that has been hit at least twice and has less than window of
// TTL left, one background refresh is started so the name never goes
// cold. Negative entries are not prefetched.
func WithPrefetch(window time.Duration) Option {
	return func(c *Cache) { c.prefetchWindow = window }
}

// WithRefreshTimeout bounds each background refresh exchange (serve-stale
// and prefetch); the default is 5s. Foreground misses are bounded by their
// caller's context instead.
func WithRefreshTimeout(d time.Duration) Option {
	return func(c *Cache) { c.refreshTimeout = d }
}

// WithTelemetry attaches the metrics sink background refreshes report
// their upstream resource usage to (pool dials, exchanges, failures,
// bytes), via a background Transaction that counts no client query — so
// serve-stale and prefetch traffic stays visible in the aggregate
// upstream accounting. Foreground queries carry their own Transaction in
// their context and are unaffected.
func WithTelemetry(m *telemetry.Metrics) Option { return func(c *Cache) { c.tel = m } }

// WithClock replaces the cache's clock. Exposed for tests and benchmarks
// that need to age entries without sleeping (the serve-stale and prefetch
// paths are clock-driven).
func WithClock(now func() time.Time) Option { return func(c *Cache) { c.now = now } }

// withClock replaces the clock (tests).
func withClock(now func() time.Time) Option { return WithClock(now) }

// New wraps upstream with a cache.
func New(upstream dnstransport.Resolver, opts ...Option) *Cache {
	c := &Cache{
		upstream:       upstream,
		maxEntries:     4096,
		nshards:        16,
		maxTTL:         24 * time.Hour,
		negTTL:         DefaultNegativeTTL,
		refreshTimeout: 5 * time.Second,
		now:            time.Now,
		seed:           maphash.MakeSeed(),
	}
	for _, o := range opts {
		o(c)
	}
	n := 1
	for n < c.nshards {
		n <<= 1
	}
	// A bound smaller than the shard count would overshoot (every shard
	// holds at least one entry), so shrink the partition count until the
	// configured bound is exact.
	for n > 1 && c.maxEntries/n < 1 {
		n >>= 1
	}
	c.nshards = n
	perShard, extra := c.maxEntries/n, c.maxEntries%n
	for i := 0; i < n; i++ {
		max := perShard
		if i < extra {
			max++
		}
		c.shards = append(c.shards, &shard{
			entries:    make(map[string]*entry),
			lru:        list.New(),
			flights:    make(map[string]*flight),
			maxEntries: max,
		})
	}
	return c
}

// DefaultNegativeTTL is the fallback negative-caching duration for
// responses without an SOA, and the default cap for those with one.
const DefaultNegativeTTL = 30 * time.Second

// StaleTTL caps the TTLs of answers served from expired-but-stale entries,
// per the RFC 8767 §4 recommendation (30 seconds): clients may briefly
// re-cache stale data but re-ask soon.
const StaleTTL = 30 * time.Second

// prefetchMinHits is how many fresh hits an entry needs before a
// near-expiry hit triggers a prefetch — the "hot name" gate that keeps
// one-off lookups from paying refresh traffic.
const prefetchMinHits = 2

// shardFor hashes a key to its partition. maphash.Bytes is the runtime's
// AES-based hash — cheap enough that sharding never shows up next to the
// per-hit response copy.
func (c *Cache) shardFor(kb []byte) *shard {
	h := maphash.Bytes(c.seed, kb)
	return c.shards[(h>>32)&uint64(len(c.shards)-1)]
}

// Close implements Resolver; it closes the upstream.
func (c *Cache) Close() error { return c.upstream.Close() }

// Stats snapshots the counters, summed over shards.
func (c *Cache) Stats() Stats {
	var s Stats
	for _, sh := range c.shards {
		sh.mu.Lock()
		s.add(sh.stats)
		sh.mu.Unlock()
	}
	return s
}

// Len reports the number of live entries (expired ones may linger until
// touched).
func (c *Cache) Len() int {
	n := 0
	for _, sh := range c.shards {
		sh.mu.Lock()
		n += len(sh.entries)
		sh.mu.Unlock()
	}
	return n
}

// Shards reports the shard count.
func (c *Cache) Shards() int { return len(c.shards) }

// Flush drops everything.
func (c *Cache) Flush() {
	for _, sh := range c.shards {
		sh.mu.Lock()
		sh.entries = make(map[string]*entry)
		sh.lru.Init()
		sh.mu.Unlock()
	}
}

// ServeWire is the zero-allocation cache-hit path: it answers a fast-parsed
// wire query by appending a complete response — the stored packed bytes
// with the client's transaction ID and decayed TTLs patched in — to dst
// (typically sliced from a pooled buffer) and returns the extended slice
// plus the telemetry outcome to record. ok=false sends the caller to the
// Message path without anything having been counted: a miss or an expired
// entry past any stale window (the Message path re-counts and refreshes
// it), a response larger than limit (truncation needs Message-level
// surgery), or a cache in message-entry mode.
//
// With a serve-stale window configured, an expired-but-stale entry is
// served with StaleTTL-capped TTLs while a singleflight background refresh
// re-populates it; with a prefetch window, a hit on a hot near-expiry
// entry triggers the same refresh early and charges tx (which may be nil)
// with the prefetch. Only those resilience paths allocate; the fresh-hit
// path stays allocation-free.
func (c *Cache) ServeWire(tx *telemetry.Transaction, q *dnswire.Query, dst []byte, limit int) ([]byte, telemetry.CacheOutcome, bool) {
	if c.messageEntries {
		return nil, telemetry.CacheNone, false
	}
	var kbuf [keyBufLen]byte
	kb := appendKeyTail(q.AppendCanonicalName(kbuf[:0]), q.Type, q.Class)
	sh := c.shardFor(kb)

	sh.mu.Lock()
	e, ok := sh.entries[string(kb)]
	if !ok {
		sh.mu.Unlock()
		return nil, telemetry.CacheNone, false
	}
	now := c.now()
	if limit > 0 && len(e.wire) > limit {
		sh.mu.Unlock()
		return nil, telemetry.CacheNone, false
	}
	stale := !now.Before(e.expires)
	if stale && (c.staleWindow <= 0 || !now.Before(e.expires.Add(c.staleWindow))) {
		sh.mu.Unlock()
		return nil, telemetry.CacheNone, false
	}
	sh.lru.MoveToFront(e.elem)
	var remaining time.Duration
	refresh, prefetch := false, false
	if stale {
		sh.stats.StaleHits++
		remaining = StaleTTL
		// Checked here, under the lock already held, so the steady state
		// of an upstream outage — every hit stale, one refresh parked on
		// the dead upstream — pays no extra lock round trip or key
		// allocation per hit (the map index below does not materialize
		// the string).
		_, inflight := sh.flights[string(kb)]
		refresh = !inflight
	} else {
		sh.stats.Hits++
		e.hits++
		remaining = e.expires.Sub(now)
		if c.wantsPrefetch(e, remaining) {
			_, inflight := sh.flights[string(kb)]
			refresh, prefetch = !inflight, !inflight
		}
	}
	sh.mu.Unlock()

	if refresh {
		// maybeRefresh re-checks the flight table under the lock, so the
		// benign race with a just-started flight resolves to a no-op.
		if started := c.maybeRefresh(sh, string(kb), prefetch); started && prefetch {
			tx.Prefetch()
		}
	}

	// The entry is immutable, so the copy and patch run outside the lock.
	resp := append(dst[:0], e.wire...)
	dnswire.PatchID(resp, q.ID)
	dnswire.DecayTTLs(resp, e.ttlOffsets, uint32(remaining/time.Second))
	outcome := telemetry.CacheHit
	switch {
	case stale:
		outcome = telemetry.CacheStaleHit
	case e.negative:
		outcome = telemetry.CacheNegativeHit
	}
	return resp, outcome, true
}

// wantsPrefetch decides whether a fresh hit should trigger the near-expiry
// refresh. Entries whose whole lifetime fits inside the prefetch window
// never qualify: for them "near expiry" is always true, and prefetching
// would turn every couple of hits into upstream traffic — amplification,
// where the feature exists to save misses on names that live longer than
// the window. Caller holds sh.mu (it reads the entry's hit counter).
func (c *Cache) wantsPrefetch(e *entry, remaining time.Duration) bool {
	return c.prefetchWindow > 0 && !e.negative && e.ttl > c.prefetchWindow &&
		e.hits >= prefetchMinHits && remaining <= c.prefetchWindow
}

// Exchange implements Resolver. Cache hits are answered with the stored
// response re-stamped with the query's ID and decayed TTLs; misses go
// upstream, coalescing concurrent identical questions into one exchange.
// Only the query's shard is locked, and never across the upstream call.
// The query's telemetry Transaction (if its server began one) learns the
// outcome — hit, negative hit, miss, coalesced or bypass — outside the
// shard lock.
func (c *Cache) Exchange(ctx context.Context, q *dnswire.Message) (*dnswire.Message, error) {
	tx := telemetry.FromContext(ctx)
	qq := q.Question1()
	if len(q.Questions) != 1 || qq.Type == dnswire.TypeANY {
		// Uncacheable shapes pass straight through.
		tx.SetCache(telemetry.CacheBypass)
		return c.upstream.Exchange(ctx, q)
	}
	var kbuf [keyBufLen]byte
	kb := appendKey(kbuf[:0], qq.Name.Canonical(), qq.Type, qq.Class)
	sh := c.shardFor(kb)

	sh.mu.Lock()
	if e, ok := sh.entries[string(kb)]; ok {
		now := c.now()
		switch {
		case now.Before(e.expires):
			sh.lru.MoveToFront(e.elem)
			sh.stats.Hits++
			e.hits++
			remaining := e.expires.Sub(now)
			prefetch := false
			if c.wantsPrefetch(e, remaining) {
				_, inflight := sh.flights[string(kb)]
				prefetch = !inflight
			}
			sh.mu.Unlock()
			if e.negative {
				tx.SetCache(telemetry.CacheNegativeHit)
			} else {
				tx.SetCache(telemetry.CacheHit)
			}
			if prefetch && c.maybeRefresh(sh, string(kb), true) {
				tx.Prefetch()
			}
			if c.messageEntries {
				return cloneResponse(e.msg, q.ID, remaining), nil
			}
			return unpackEntry(e, q.ID, remaining)
		case c.staleWindow > 0 && now.Before(e.expires.Add(c.staleWindow)):
			// RFC 8767 serve-stale: answer immediately from the expired
			// entry while one background refresh re-populates it — the
			// client never waits on the upstream.
			sh.lru.MoveToFront(e.elem)
			sh.stats.StaleHits++
			_, inflight := sh.flights[string(kb)]
			sh.mu.Unlock()
			tx.SetCache(telemetry.CacheStaleHit)
			if !inflight {
				c.maybeRefresh(sh, string(kb), false)
			}
			if c.messageEntries {
				return cloneResponse(e.msg, q.ID, StaleTTL), nil
			}
			return unpackEntry(e, q.ID, StaleTTL)
		default:
			sh.removeLocked(e)
		}
	}
	// Miss: join or start a flight.
	if f, ok := sh.flights[string(kb)]; ok {
		sh.stats.Coalesced++
		sh.mu.Unlock()
		tx.SetCache(telemetry.CacheCoalesced)
		select {
		case <-f.done:
			if f.err != nil {
				return nil, f.err
			}
			return cloneResponse(f.resp, q.ID, 0), nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	k := string(kb)
	f := &flight{done: make(chan struct{})}
	sh.flights[k] = f
	sh.stats.Misses++
	sh.mu.Unlock()
	tx.SetCache(telemetry.CacheMiss)

	// The flight is shared by every coalesced caller, so it must not die
	// with the leader's client: detach from the leader's cancellation but
	// keep its deadline, so a proxy-level upstream timeout still bounds
	// the exchange while a mid-flight disconnect no longer poisons the
	// other waiters with SERVFAIL.
	exCtx := context.WithoutCancel(ctx)
	if deadline, ok := ctx.Deadline(); ok {
		var cancel context.CancelFunc
		exCtx, cancel = context.WithDeadline(exCtx, deadline)
		defer cancel()
	}
	resp, err := c.upstream.Exchange(exCtx, q)
	f.resp, f.err = resp, err

	var e *entry
	if err == nil && cacheable(resp) {
		e = c.buildEntry(k, resp)
	}

	evicted := 0
	sh.mu.Lock()
	delete(sh.flights, k)
	if e != nil {
		evicted = sh.insertLocked(e)
	}
	sh.mu.Unlock()
	tx.CacheEvicted(evicted)
	close(f.done)
	if err != nil {
		return nil, err
	}
	return cloneResponse(resp, q.ID, 0), nil
}

// buildEntry packs resp into an immutable cache entry (or records the
// message itself in message-entry mode). It runs outside the shard lock —
// packing is the expensive part of a miss's insert, and the miss has
// already paid an upstream round trip. A response the codec cannot
// re-pack (never seen in practice: it was just unpacked by the transport)
// is simply not cached.
func (c *Cache) buildEntry(k string, resp *dnswire.Message) *entry {
	ttl := c.clampTTL(c.ttlOf(resp))
	e := &entry{
		key:      k,
		negative: negative(resp),
		ttl:      ttl,
		expires:  c.now().Add(ttl),
	}
	if c.messageEntries {
		e.msg = resp
		return e
	}
	wire, err := resp.Pack()
	if err != nil {
		return nil
	}
	offsets, err := dnswire.TTLOffsets(wire)
	if err != nil {
		return nil
	}
	e.wire, e.ttlOffsets = wire, offsets
	return e
}

// unpackEntry rebuilds a Message from an immutable packed entry: a fresh
// unpack shares no mutable state with the cache, which is what lets every
// caller mutate its response freely (the shared-EDNS hazard the old deep
// clone left open). The unpack cannot fail — the entry's bytes came from
// our own packer — but the error is propagated rather than swallowed.
func unpackEntry(e *entry, id uint16, remaining time.Duration) (*dnswire.Message, error) {
	m := new(dnswire.Message)
	if err := m.Unpack(e.wire); err != nil {
		return nil, err
	}
	m.ID = id
	if remaining > 0 {
		rem := uint32(remaining / time.Second)
		for _, rrs := range [][]dnswire.ResourceRecord{m.Answers, m.Authorities, m.Additionals} {
			for i := range rrs {
				if rrs[i].TTL > rem {
					rrs[i].TTL = rem
				}
			}
		}
	}
	return m, nil
}

// removeLocked unlinks an entry. Caller holds sh.mu.
func (sh *shard) removeLocked(e *entry) {
	delete(sh.entries, e.key)
	sh.lru.Remove(e.elem)
}

// insertLocked installs e — replacing any existing entry for its key, as a
// background refresh of a still-present stale entry does — and evicts past
// the shard bound, returning the eviction count. Caller holds sh.mu.
func (sh *shard) insertLocked(e *entry) int {
	if old, ok := sh.entries[e.key]; ok {
		sh.removeLocked(old)
	}
	e.elem = sh.lru.PushFront(e)
	sh.entries[e.key] = e
	evicted := 0
	for len(sh.entries) > sh.maxEntries {
		oldest := sh.lru.Back()
		if oldest == nil {
			break
		}
		sh.removeLocked(oldest.Value.(*entry))
		sh.stats.Evictions++
		evicted++
	}
	return evicted
}

// maybeRefresh starts a background singleflight refresh of key k unless an
// exchange for it is already in flight, reporting whether this call
// started one. prefetch labels the trigger for stats. Caller must not hold
// sh.mu.
func (c *Cache) maybeRefresh(sh *shard, k string, prefetch bool) bool {
	sh.mu.Lock()
	if _, inflight := sh.flights[k]; inflight {
		sh.mu.Unlock()
		return false
	}
	f := &flight{done: make(chan struct{})}
	sh.flights[k] = f
	sh.stats.Refreshes++
	if prefetch {
		sh.stats.Prefetches++
	}
	sh.mu.Unlock()
	go c.refresh(sh, k, f)
	return true
}

// refresh is the background half of serve-stale and prefetch: one upstream
// exchange re-populating k while foreground queries keep answering from
// the existing entry. It holds the key's singleflight slot, so concurrent
// misses for the same name join it instead of going upstream themselves.
// A failed refresh leaves the old entry in place — within a serve-stale
// window that is exactly the availability RFC 8767 wants.
func (c *Cache) refresh(sh *shard, k string, f *flight) {
	ctx, cancel := context.WithTimeout(context.Background(), c.refreshTimeout)
	defer cancel()
	tx := c.tel.BeginBackground()
	defer tx.Finish()
	resp, err := c.upstream.Exchange(telemetry.NewContext(ctx, tx), refreshQuery(k))
	f.resp, f.err = resp, err
	var e *entry
	if err == nil && cacheable(resp) {
		e = c.buildEntry(k, resp)
	}
	sh.mu.Lock()
	delete(sh.flights, k)
	if e != nil {
		sh.insertLocked(e)
	}
	sh.mu.Unlock()
	close(f.done)
}

// refreshQuery rebuilds the question a cache key encodes — the canonical
// name followed by four octets of type and class — into a fresh query
// message for the background refresh.
func refreshQuery(k string) *dnswire.Message {
	name := dnswire.Name(k[:len(k)-4])
	qtype := dnswire.Type(uint16(k[len(k)-4])<<8 | uint16(k[len(k)-3]))
	class := dnswire.Class(uint16(k[len(k)-2])<<8 | uint16(k[len(k)-1]))
	q := dnswire.NewQuery(0, name, qtype)
	q.Questions[0].Class = class
	return q
}

func (c *Cache) clampTTL(ttl time.Duration) time.Duration {
	if ttl < c.minTTL {
		ttl = c.minTTL
	}
	if c.maxTTL > 0 && ttl > c.maxTTL {
		ttl = c.maxTTL
	}
	return ttl
}

// cacheable accepts positive answers and NXDOMAIN/NODATA (negative caching
// per RFC 2308).
func cacheable(resp *dnswire.Message) bool {
	if resp == nil || resp.Truncated {
		return false
	}
	switch resp.RCode {
	case dnswire.RCodeSuccess, dnswire.RCodeNameError:
		return true
	}
	return false
}

// negative reports whether resp is an RFC 2308 negative answer: NXDOMAIN,
// or NOERROR with an empty answer section (NODATA).
func negative(resp *dnswire.Message) bool {
	return resp.RCode == dnswire.RCodeNameError ||
		(resp.RCode == dnswire.RCodeSuccess && len(resp.Answers) == 0)
}

// ttlOf derives the cache lifetime of a response: the smallest answer-
// section TTL for positive answers, or the RFC 2308 §3/§5 negative TTL —
// min(SOA record TTL, SOA MINIMUM field) from the authority section — for
// negative ones, capped at the configured negative ceiling.
func (c *Cache) ttlOf(resp *dnswire.Message) time.Duration {
	if negative(resp) {
		return c.negativeTTL(resp)
	}
	min := time.Duration(-1)
	for _, section := range [][]dnswire.ResourceRecord{resp.Answers, resp.Authorities} {
		for _, rr := range section {
			ttl := time.Duration(rr.TTL) * time.Second
			if min < 0 || ttl < min {
				min = ttl
			}
		}
	}
	if min < 0 {
		return c.negTTL
	}
	return min
}

// negativeTTL implements the RFC 2308 negative-TTL derivation.
func (c *Cache) negativeTTL(resp *dnswire.Message) time.Duration {
	for _, rr := range resp.Authorities {
		soa, ok := rr.Data.(*dnswire.SOA)
		if !ok {
			continue
		}
		secs := rr.TTL
		if soa.Minimum < secs {
			secs = soa.Minimum
		}
		ttl := time.Duration(secs) * time.Second
		if c.negTTL > 0 && ttl > c.negTTL {
			ttl = c.negTTL
		}
		return ttl
	}
	return c.negTTL
}

// cloneResponse copies resp, restamps the transaction ID, and decays TTLs
// by the entry's age (remaining > 0 selects decay toward `remaining`). It
// serves singleflight waiters (whose shared response is a live Message) and
// message-entry-mode hits; the RData payloads and EDNS are shared between
// the clones, which is the shallowness the wire-entry default eliminates.
func cloneResponse(resp *dnswire.Message, id uint16, remaining time.Duration) *dnswire.Message {
	cp := *resp
	cp.ID = id
	decay := func(rrs []dnswire.ResourceRecord) []dnswire.ResourceRecord {
		if remaining <= 0 {
			return append([]dnswire.ResourceRecord(nil), rrs...)
		}
		out := make([]dnswire.ResourceRecord, len(rrs))
		copy(out, rrs)
		rem := uint32(remaining / time.Second)
		for i := range out {
			if out[i].TTL > rem {
				out[i].TTL = rem
			}
		}
		return out
	}
	cp.Answers = decay(resp.Answers)
	cp.Authorities = decay(resp.Authorities)
	cp.Additionals = decay(resp.Additionals)
	return &cp
}

var _ dnstransport.Resolver = (*Cache)(nil)

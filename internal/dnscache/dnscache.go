// Package dnscache provides a TTL-respecting, size-bounded cache that wraps
// any Resolver, plus in-flight query coalescing (singleflight): concurrent
// identical queries share one upstream exchange.
//
// The cache is hash-partitioned into shards, each with its own lock, LRU
// list and in-flight table, so the hit path never funnels through a global
// mutex — the property that lets a forwarding proxy serve hot names from
// many connections at full core count. Negative answers (NXDOMAIN and
// NODATA) are cached with the RFC 2308 TTL: the minimum of the authority
// SOA record's TTL and its MINIMUM field.
//
// Entries are stored as packed wire bytes with their TTL field offsets
// recorded at insert time, packed into per-shard append-only arenas so the
// GC sees a handful of large slabs instead of one small allocation per
// entry; when a shard's arena accumulates more dead bytes than live ones,
// it rotates the epoch — live entries are compacted into fresh slabs and
// the retired slabs recycled. A hit is served by copying the stored bytes,
// restamping the transaction ID and decaying the TTLs in place (ServeWire
// — no Unpack, no clone, no Pack), or, for callers that need a
// *dnswire.Message, by unpacking a fresh message that shares nothing with
// the stored entry. The pre-wire-path behaviour — *Message entries served
// by deep clone — remains available behind WithMessageEntries for
// comparison benchmarks.
//
// Capacity can be bounded two ways: WithMaxEntries counts entries, while
// WithMemoryBudget accounts bytes — each entry charged its arena block,
// its key and a fixed index overhead — which is the bound that stays
// honest when answer sizes vary. WithTinyLFU adds frequency-gated
// admission on top of either bound: a per-shard count-min sketch (4-bit
// counters, periodic halving, doorkeeper bloom for one-hit wonders)
// estimates every name's lookup frequency, and an insert that would evict
// must beat its victims' frequency to be admitted — the policy that keeps
// a long tail of once-asked names from churning the working set.
//
// Two resilience mechanisms keep hot answers flowing when the upstream is
// slow or down. With WithServeStale, expired entries stay answerable for a
// window past expiry (RFC 8767): a stale hit is served immediately with
// StaleTTL-capped TTLs while exactly one background refresh — singleflight
// with any concurrent misses — re-populates the entry. With WithPrefetch,
// a hit on a hot entry inside the prefetch window triggers the same
// refresh before expiry, so popular names never go cold at all.
//
// The paper deliberately cleared caches between page loads to measure worst
// cases; this package is the production counterpart — and the knob for the
// cache ablation, which shows how quickly a warm cache erases the DoH
// resolution-time penalty (almost 25% of the paper's 2.18M crawl queries
// went to just fifteen names).
package dnscache

import (
	"container/list"
	"context"
	"fmt"
	"hash/maphash"
	"math"
	"strconv"
	"sync"
	"time"

	"dohcost/internal/dnstransport"
	"dohcost/internal/dnswire"
	"dohcost/internal/qtrace"
	"dohcost/internal/telemetry"
)

// keyBufLen bounds a stack-allocated key buffer: a canonical name is at
// most 254 presentation octets, followed by four octets of type and class.
const keyBufLen = 260

// appendKey renders the cache key for (name, qtype, class): the canonical
// name followed by the big-endian type and class. Keys are plain strings so
// the hit path can look them up with a zero-copy []byte→string conversion.
func appendKey(dst []byte, name dnswire.Name, qtype dnswire.Type, class dnswire.Class) []byte {
	return appendKeyTail(append(dst, string(name)...), qtype, class)
}

// appendKeyTail appends the four type/class octets that close a key whose
// name part is already rendered (the wire fast path renders it from the
// packed question directly).
func appendKeyTail(dst []byte, qtype dnswire.Type, class dnswire.Class) []byte {
	return append(dst, byte(qtype>>8), byte(qtype), byte(class>>8), byte(class))
}

// entry is one cached response. Its payload bytes live in the shard's
// arena and are never rewritten in place, but epoch rotation may relocate
// them (wire and toffs are re-pointed at a fresh slab under the shard
// lock), so readers copy the payload out while holding the lock — the copy
// is a few hundred bytes, far cheaper than a second lock round trip. The
// hits counter is likewise guarded by the shard lock.
type entry struct {
	key string
	// hash is the key's maphash, retained so the admission filter can
	// estimate an eviction victim's frequency without rehashing.
	hash uint64
	// wire is the packed response, still carrying the upstream exchange's
	// transaction ID (hits restamp their own copy); toffs is the packed
	// big-endian uint16 list of its TTL offsets (dnswire.PackTTLOffsets)
	// for in-place decay. Both alias one arena block. Unused in
	// message-entry mode.
	wire  []byte
	toffs []byte
	// cost is the entry's accounted footprint against the memory budget:
	// arena block + key + entryOverhead.
	cost int
	// negative records the RFC 2308 NXDOMAIN/NODATA classification, so the
	// wire hit path can label telemetry without parsing.
	negative bool
	// msg holds the response in message-entry mode (WithMessageEntries).
	msg     *dnswire.Message
	expires time.Time
	// ttl is the clamped lifetime the entry was inserted with; the
	// prefetch gate compares it against the prefetch window.
	ttl  time.Duration
	elem *list.Element
	// hits counts fresh hits since insertion — the hotness signal the
	// near-expiry prefetch gates on. Guarded by the shard lock.
	hits int
}

// entryOverhead approximates one entry's index cost outside its arena
// block — the entry struct, its list.Element, its share of the shard map's
// buckets and the key's string header — charged against the memory budget
// so the budget tracks resident footprint, not just payload bytes.
const entryOverhead = 192

// Stats counts cache effectiveness, aggregated across shards. The JSON
// tags match the snake_case style of the telemetry snapshot, which
// embeds these counters in the proxy's /debug/cost report.
type Stats struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Coalesced int64 `json:"coalesced"` // queries answered by joining an in-flight exchange
	Evictions int64 `json:"evictions"`
	// StaleHits counts expired-but-stale answers served while a background
	// refresh ran (RFC 8767 serve-stale).
	StaleHits int64 `json:"stale_hits"`
	// Prefetches counts near-expiry background refreshes triggered by hits
	// on hot entries; Refreshes counts all background refreshes started
	// (prefetch + serve-stale).
	Prefetches int64 `json:"prefetches"`
	Refreshes  int64 `json:"refreshes"`
	// AdmissionRejects counts insert candidates the TinyLFU filter refused
	// because an eviction victim out-ranked them on estimated frequency
	// (includes entries too large for a whole shard's budget).
	AdmissionRejects int64 `json:"admission_rejects"`
	// BytesLive is the accounted footprint of live entries (arena payload
	// + keys + index overhead) at snapshot time — a gauge, not a counter.
	BytesLive int64 `json:"bytes_live"`
	// ArenaEpochs counts arena epoch rotations: live entries compacted
	// into fresh slabs, retired slabs recycled.
	ArenaEpochs int64 `json:"arena_epochs"`
	// SketchResets counts TinyLFU sketch aging resets (counters halved,
	// doorkeeper cleared).
	SketchResets int64 `json:"sketch_resets"`
}

// add merges per-shard counters; BytesLive is excluded — it is a gauge
// Stats() reads from the shards' live accounting directly.
func (s *Stats) add(o Stats) {
	s.Hits += o.Hits
	s.Misses += o.Misses
	s.Coalesced += o.Coalesced
	s.Evictions += o.Evictions
	s.StaleHits += o.StaleHits
	s.Prefetches += o.Prefetches
	s.Refreshes += o.Refreshes
	s.AdmissionRejects += o.AdmissionRejects
	s.ArenaEpochs += o.ArenaEpochs
	s.SketchResets += o.SketchResets
}

// flight is one in-progress upstream exchange shared by coalesced callers.
type flight struct {
	done chan struct{}
	resp *dnswire.Message
	err  error
}

// shard is one lock domain: a partition of the key space with its own LRU
// and singleflight table.
type shard struct {
	mu         sync.Mutex
	entries    map[string]*entry
	lru        *list.List // front = most recent
	flights    map[string]*flight
	stats      Stats
	maxEntries int
	// budget bounds the accounted bytes of live entries (0 = no byte
	// bound); bytes is the current accounted total (sum of entry.cost) and
	// wireBytes the live arena payload alone — the rotation heuristic's
	// live measure.
	budget    int64
	bytes     int64
	wireBytes int
	// arena packs entry payloads (nil in message-entry mode); sk is the
	// TinyLFU admission sketch (nil without WithTinyLFU).
	arena *arena
	sk    *sketch
}

// Cache is a sharded caching resolver. Safe for concurrent use.
type Cache struct {
	upstream dnstransport.Resolver
	shards   []*shard
	seed     maphash.Seed

	// maxEntries bounds the cache across all shards (LRU eviction per
	// shard); unset means 4096, or unbounded when a memory budget rules
	// instead.
	maxEntries int
	// budget bounds the cache in accounted bytes across all shards
	// (WithMemoryBudget); 0 disables the byte bound.
	budget int64
	// admission enables the TinyLFU admission filter (WithTinyLFU).
	admission bool
	// slabSize overrides the arena slab size (tests force rotations with
	// tiny slabs); 0 derives it from the budget.
	slabSize int
	// nshards is the shard count, rounded up to a power of two; 0 means 16.
	nshards int
	// minTTL/maxTTL clamp record TTLs (resolver-style cache policy).
	minTTL, maxTTL time.Duration
	// negTTL caps negative-cache TTLs and is the fallback when a negative
	// response carries no SOA (RFC 2308 leaves that response uncacheable;
	// we hold it briefly, the way production resolvers do).
	negTTL time.Duration
	// messageEntries selects the legacy *Message storage (see
	// WithMessageEntries); the default is packed wire entries.
	messageEntries bool
	// staleWindow keeps expired entries answerable this long past expiry
	// (RFC 8767 serve-stale); 0 disables.
	staleWindow time.Duration
	// prefetchWindow triggers a background refresh when a hit finds a hot
	// entry within this much of expiry; 0 disables.
	prefetchWindow time.Duration
	// refreshTimeout bounds one background refresh exchange.
	refreshTimeout time.Duration
	// tel, when set, makes background refreshes report their upstream
	// resource usage (WithTelemetry).
	tel *telemetry.Metrics
	// now is the clock, replaceable in tests.
	now func() time.Time
}

// Option configures a Cache.
type Option func(*Cache)

// WithMaxEntries bounds the cache size across all shards.
func WithMaxEntries(n int) Option { return func(c *Cache) { c.maxEntries = n } }

// WithMemoryBudget bounds the cache by accounted bytes instead of entry
// count: every entry is charged its arena block (packed response + TTL
// offsets), its key and entryOverhead of index cost, and the budget is
// split across shards the way WithMaxEntries is. Setting a budget lifts
// the default 4096-entry count bound (an explicit WithMaxEntries still
// applies on top); an entry larger than a whole shard's budget is not
// cached at all. Non-positive budgets are ignored.
func WithMemoryBudget(bytes int64) Option {
	return func(c *Cache) {
		if bytes > 0 {
			c.budget = bytes
		}
	}
}

// ParseByteSize parses a human-friendly byte count for WithMemoryBudget
// flags: a non-negative integer with an optional k, m or g suffix (binary
// multiples, case-insensitive), e.g. "512k", "64m", "2g".
func ParseByteSize(s string) (int64, error) {
	digits, mult := s, int64(1)
	if n := len(s); n > 0 {
		switch s[n-1] {
		case 'k', 'K':
			mult, digits = 1<<10, s[:n-1]
		case 'm', 'M':
			mult, digits = 1<<20, s[:n-1]
		case 'g', 'G':
			mult, digits = 1<<30, s[:n-1]
		}
	}
	v, err := strconv.ParseInt(digits, 10, 64)
	if err != nil || v < 0 {
		return 0, fmt.Errorf("dnscache: invalid byte size %q (want e.g. 8388608, 8m, 512k)", s)
	}
	return v * mult, nil
}

// WithTinyLFU enables frequency-gated admission: each shard keeps a
// count-min sketch (4-bit counters with periodic halving, doorkeeper bloom
// absorbing one-hit wonders) of lookup frequency, and an insert that would
// evict must estimate strictly hotter than every victim it displaces, or
// the insert is refused and the incumbents stay. Expired victims never
// veto. The filter is what holds the hit rate up when a heavy-tailed name
// stream (most names asked once) washes over a byte-budgeted cache.
func WithTinyLFU() Option { return func(c *Cache) { c.admission = true } }

// withArenaSlab overrides the arena slab size — tests shrink it to force
// frequent epoch rotations.
func withArenaSlab(n int) Option { return func(c *Cache) { c.slabSize = n } }

// WithTTLBounds clamps cached TTLs.
func WithTTLBounds(min, max time.Duration) Option {
	return func(c *Cache) { c.minTTL, c.maxTTL = min, max }
}

// WithShards sets the number of lock partitions (rounded up to a power of
// two). One shard reproduces the classic single-mutex cache; the default
// 16 keeps the hit path off any global lock.
func WithShards(n int) Option { return func(c *Cache) { c.nshards = n } }

// WithNegativeTTL caps how long NXDOMAIN/NODATA answers are cached; it is
// also the TTL used when a negative response carries no SOA.
func WithNegativeTTL(d time.Duration) Option { return func(c *Cache) { c.negTTL = d } }

// WithMessageEntries stores cached responses as unpacked *dnswire.Message
// values and serves hits by deep-cloning them — the behaviour before the
// wire fast path existed. It disables ServeWire (every query takes the
// Message path) and exists to keep the old hit path measurable:
// BenchmarkCacheHitWirePath runs both modes side by side.
func WithMessageEntries() Option { return func(c *Cache) { c.messageEntries = true } }

// WithServeStale keeps expired entries answerable for window past expiry
// (RFC 8767): a query hitting an expired-but-stale entry is answered
// immediately from memory with StaleTTL-capped TTLs while exactly one
// background refresh re-populates the entry. Both serving paths (wire and
// Message) honor the window.
func WithServeStale(window time.Duration) Option {
	return func(c *Cache) { c.staleWindow = window }
}

// WithPrefetch refreshes hot entries before they expire: when a hit finds
// an entry that has been hit at least twice and has less than window of
// TTL left, one background refresh is started so the name never goes
// cold. Negative entries are not prefetched.
func WithPrefetch(window time.Duration) Option {
	return func(c *Cache) { c.prefetchWindow = window }
}

// WithRefreshTimeout bounds each background refresh exchange (serve-stale
// and prefetch); the default is 5s. Foreground misses are bounded by their
// caller's context instead.
func WithRefreshTimeout(d time.Duration) Option {
	return func(c *Cache) { c.refreshTimeout = d }
}

// WithTelemetry attaches the metrics sink background refreshes report
// their upstream resource usage to (pool dials, exchanges, failures,
// bytes), via a background Transaction that counts no client query — so
// serve-stale and prefetch traffic stays visible in the aggregate
// upstream accounting. Foreground queries carry their own Transaction in
// their context and are unaffected.
func WithTelemetry(m *telemetry.Metrics) Option { return func(c *Cache) { c.tel = m } }

// WithClock replaces the cache's clock. Exposed for tests and benchmarks
// that need to age entries without sleeping (the serve-stale and prefetch
// paths are clock-driven).
func WithClock(now func() time.Time) Option { return func(c *Cache) { c.now = now } }

// withClock replaces the clock (tests).
func withClock(now func() time.Time) Option { return WithClock(now) }

// minShardBudget is the smallest per-shard byte budget worth partitioning
// for: below it the shard count shrinks, the way a small entry bound does.
const minShardBudget = 2 << 10

// New wraps upstream with a cache.
func New(upstream dnstransport.Resolver, opts ...Option) *Cache {
	c := &Cache{
		upstream:       upstream,
		maxEntries:     -1, // sentinel: default decided after options
		nshards:        16,
		maxTTL:         24 * time.Hour,
		negTTL:         DefaultNegativeTTL,
		refreshTimeout: 5 * time.Second,
		now:            time.Now,
		seed:           maphash.MakeSeed(),
	}
	for _, o := range opts {
		o(c)
	}
	if c.maxEntries < 0 {
		if c.budget > 0 {
			// The byte budget is the bound; no entry-count ceiling.
			c.maxEntries = math.MaxInt
		} else {
			c.maxEntries = 4096
		}
	}
	n := 1
	for n < c.nshards {
		n <<= 1
	}
	// A bound smaller than the shard count would overshoot (every shard
	// holds at least one entry), so shrink the partition count until the
	// configured bound is exact. A small byte budget shrinks the same way,
	// so every remaining shard has room for real entries.
	for n > 1 && c.maxEntries/n < 1 {
		n >>= 1
	}
	for n > 1 && c.budget > 0 && c.budget/int64(n) < minShardBudget {
		n >>= 1
	}
	c.nshards = n
	slab := c.slabSize
	if slab <= 0 {
		slab = defaultSlabSize
		if c.budget > 0 {
			// Scale slabs to the shard budget so a small cache's resident
			// footprint is not rounded up to whole 256 KiB slabs.
			if s := int(c.budget / int64(n) / 4); s < slab {
				slab = s
			}
		}
	}
	perShard, extra := c.maxEntries/n, c.maxEntries%n
	perB, extraB := c.budget/int64(n), c.budget%int64(n)
	for i := 0; i < n; i++ {
		max := perShard
		if i < extra {
			max++
		}
		budget := perB
		if int64(i) < extraB {
			budget++
		}
		sh := &shard{
			entries:    make(map[string]*entry),
			lru:        list.New(),
			flights:    make(map[string]*flight),
			maxEntries: max,
			budget:     budget,
		}
		if !c.messageEntries {
			sh.arena = newArena(slab)
		}
		if c.admission {
			sh.sk = newSketch(c.expectedPerShard(budget, max))
		}
		c.shards = append(c.shards, sh)
	}
	return c
}

// expectedPerShard estimates how many entries one shard will hold — the
// admission sketch's sizing input. Budget-bound shards assume a ~384-byte
// average accounted entry; count-bound shards use the bound itself, capped
// so an unbounded cache does not size an unbounded sketch.
func (c *Cache) expectedPerShard(budget int64, max int) int {
	if budget > 0 {
		return int(budget / 384)
	}
	if max > 1<<15 {
		return 1 << 15
	}
	return max
}

// DefaultNegativeTTL is the fallback negative-caching duration for
// responses without an SOA, and the default cap for those with one.
const DefaultNegativeTTL = 30 * time.Second

// StaleTTL caps the TTLs of answers served from expired-but-stale entries,
// per the RFC 8767 §4 recommendation (30 seconds): clients may briefly
// re-cache stale data but re-ask soon.
const StaleTTL = 30 * time.Second

// prefetchMinHits is how many fresh hits an entry needs before a
// near-expiry hit triggers a prefetch — the "hot name" gate that keeps
// one-off lookups from paying refresh traffic.
const prefetchMinHits = 2

// shardFor hashes a key to its partition, returning the full hash too —
// the admission sketch keys on it. maphash.Bytes is the runtime's
// AES-based hash — cheap enough that sharding never shows up next to the
// per-hit response copy.
func (c *Cache) shardFor(kb []byte) (*shard, uint64) {
	h := maphash.Bytes(c.seed, kb)
	return c.shards[(h>>32)&uint64(len(c.shards)-1)], h
}

// Close implements Resolver; it closes the upstream.
func (c *Cache) Close() error { return c.upstream.Close() }

// Stats snapshots the counters, summed over shards. BytesLive is read
// from the shards' live accounting at the same instant.
func (c *Cache) Stats() Stats {
	var s Stats
	for _, sh := range c.shards {
		sh.mu.Lock()
		s.add(sh.stats)
		s.BytesLive += sh.bytes
		sh.mu.Unlock()
	}
	return s
}

// BytesLive reports the accounted footprint of live entries across shards
// (arena payload + keys + index overhead).
func (c *Cache) BytesLive() int64 {
	var n int64
	for _, sh := range c.shards {
		sh.mu.Lock()
		n += sh.bytes
		sh.mu.Unlock()
	}
	return n
}

// MemoryBudget reports the configured byte budget (0 = entry-count bound
// only).
func (c *Cache) MemoryBudget() int64 { return c.budget }

// Len reports the number of live entries (expired ones may linger until
// touched).
func (c *Cache) Len() int {
	n := 0
	for _, sh := range c.shards {
		sh.mu.Lock()
		n += len(sh.entries)
		sh.mu.Unlock()
	}
	return n
}

// Shards reports the shard count.
func (c *Cache) Shards() int { return len(c.shards) }

// Flush drops everything: entries, byte accounting, and each shard's
// arena epoch (retired slabs stay on the free list for reuse).
func (c *Cache) Flush() {
	for _, sh := range c.shards {
		sh.mu.Lock()
		sh.entries = make(map[string]*entry)
		sh.lru.Init()
		sh.bytes, sh.wireBytes = 0, 0
		if sh.arena != nil {
			sh.arena.recycle(sh.arena.beginEpoch())
		}
		sh.mu.Unlock()
	}
}

// ServeWire is the zero-allocation cache-hit path: it answers a fast-parsed
// wire query by appending a complete response — the stored packed bytes
// with the client's transaction ID and decayed TTLs patched in — to dst
// (typically sliced from a pooled buffer) and returns the extended slice
// plus the telemetry outcome to record. ok=false sends the caller to the
// Message path without anything having been counted: a miss or an expired
// entry past any stale window (the Message path re-counts and refreshes
// it), a response larger than limit (truncation needs Message-level
// surgery), or a cache in message-entry mode.
//
// With a serve-stale window configured, an expired-but-stale entry is
// served with StaleTTL-capped TTLs while a singleflight background refresh
// re-populates it; with a prefetch window, a hit on a hot near-expiry
// entry triggers the same refresh early and charges tx (which may be nil)
// with the prefetch. Only those resilience paths allocate; the fresh-hit
// path stays allocation-free.
func (c *Cache) ServeWire(tx *telemetry.Transaction, q *dnswire.Query, dst []byte, limit int) ([]byte, telemetry.CacheOutcome, bool) {
	if c.messageEntries {
		return nil, telemetry.CacheNone, false
	}
	var kbuf [keyBufLen]byte
	kb := appendKeyTail(q.AppendCanonicalName(kbuf[:0]), q.Type, q.Class)
	sh, h := c.shardFor(kb)

	sh.mu.Lock()
	e, ok := sh.entries[string(kb)]
	if !ok {
		sh.mu.Unlock()
		return nil, telemetry.CacheNone, false
	}
	now := c.now()
	if limit > 0 && len(e.wire) > limit {
		sh.mu.Unlock()
		return nil, telemetry.CacheNone, false
	}
	stale := !now.Before(e.expires)
	if stale && (c.staleWindow <= 0 || !now.Before(e.expires.Add(c.staleWindow))) {
		sh.mu.Unlock()
		return nil, telemetry.CacheNone, false
	}
	sh.lru.MoveToFront(e.elem)
	// Feed the admission sketch only on served hits; declined lookups
	// fall through to Exchange, which counts them there — one frequency
	// sample per query either way.
	if sh.sk != nil && sh.sk.add(h) {
		sh.stats.SketchResets++
	}
	var remaining time.Duration
	refresh, prefetch := false, false
	if stale {
		sh.stats.StaleHits++
		remaining = StaleTTL
		// Checked here, under the lock already held, so the steady state
		// of an upstream outage — every hit stale, one refresh parked on
		// the dead upstream — pays no extra lock round trip or key
		// allocation per hit (the map index below does not materialize
		// the string).
		_, inflight := sh.flights[string(kb)]
		refresh = !inflight
	} else {
		sh.stats.Hits++
		e.hits++
		remaining = e.expires.Sub(now)
		if c.wantsPrefetch(e, remaining) {
			_, inflight := sh.flights[string(kb)]
			refresh, prefetch = !inflight, !inflight
		}
	}
	// Copy, patch and decay under the lock: an epoch rotation relocates
	// entry payloads and recycles their old slabs, so e.wire and e.toffs
	// are only safe to read while the lock pins the arena. The copy lands
	// in the caller's buffer — the response never aliases a slab.
	resp := append(dst[:0], e.wire...)
	dnswire.PatchID(resp, q.ID)
	dnswire.DecayTTLsPacked(resp, e.toffs, uint32(remaining/time.Second))
	negative := e.negative
	sh.mu.Unlock()

	if refresh {
		// maybeRefresh re-checks the flight table under the lock, so the
		// benign race with a just-started flight resolves to a no-op.
		if started := c.maybeRefresh(sh, string(kb), prefetch); started && prefetch {
			tx.Prefetch()
		}
	}

	outcome := telemetry.CacheHit
	switch {
	case stale:
		outcome = telemetry.CacheStaleHit
	case negative:
		outcome = telemetry.CacheNegativeHit
	}
	return resp, outcome, true
}

// wantsPrefetch decides whether a fresh hit should trigger the near-expiry
// refresh. Entries whose whole lifetime fits inside the prefetch window
// never qualify: for them "near expiry" is always true, and prefetching
// would turn every couple of hits into upstream traffic — amplification,
// where the feature exists to save misses on names that live longer than
// the window. Caller holds sh.mu (it reads the entry's hit counter).
func (c *Cache) wantsPrefetch(e *entry, remaining time.Duration) bool {
	return c.prefetchWindow > 0 && !e.negative && e.ttl > c.prefetchWindow &&
		e.hits >= prefetchMinHits && remaining <= c.prefetchWindow
}

// Exchange implements Resolver. Cache hits are answered with the stored
// response re-stamped with the query's ID and decayed TTLs; misses go
// upstream, coalescing concurrent identical questions into one exchange.
// Only the query's shard is locked, and never across the upstream call.
// The query's telemetry Transaction (if its server began one) learns the
// outcome — hit, negative hit, miss, coalesced or bypass — outside the
// shard lock.
func (c *Cache) Exchange(ctx context.Context, q *dnswire.Message) (*dnswire.Message, error) {
	tx := telemetry.FromContext(ctx)
	qq := q.Question1()
	if len(q.Questions) != 1 || qq.Type == dnswire.TypeANY {
		// Uncacheable shapes pass straight through.
		tx.SetCache(telemetry.CacheBypass)
		return c.upstream.Exchange(ctx, q)
	}
	// The cache-lookup span covers key build, shard lock and the in-memory
	// decision; on a miss it ends when the flight is registered, so the
	// upstream wait never inflates it.
	tl := tx.TraceStart()
	var kbuf [keyBufLen]byte
	kb := appendKey(kbuf[:0], qq.Name.Canonical(), qq.Type, qq.Class)
	sh, h := c.shardFor(kb)

	sh.mu.Lock()
	// Feed the admission sketch once per cacheable lookup. ServeWire counts
	// the hits it serves itself; everything that reaches this lock — direct
	// Message-path traffic and wire-path misses falling through — is
	// counted here, so no query is sampled twice.
	if sh.sk != nil && sh.sk.add(h) {
		sh.stats.SketchResets++
	}
	if e, ok := sh.entries[string(kb)]; ok {
		now := c.now()
		switch {
		case now.Before(e.expires):
			sh.lru.MoveToFront(e.elem)
			sh.stats.Hits++
			e.hits++
			remaining := e.expires.Sub(now)
			prefetch := false
			if c.wantsPrefetch(e, remaining) {
				_, inflight := sh.flights[string(kb)]
				prefetch = !inflight
			}
			neg, msg := e.negative, e.msg
			var w []byte
			if !c.messageEntries {
				// Copy under the lock: an epoch rotation may relocate the
				// entry's payload and recycle its slab.
				w = append([]byte(nil), e.wire...)
			}
			sh.mu.Unlock()
			tx.TraceSpan(qtrace.PhaseCache, tl)
			if neg {
				tx.SetCache(telemetry.CacheNegativeHit)
			} else {
				tx.SetCache(telemetry.CacheHit)
			}
			if prefetch && c.maybeRefresh(sh, string(kb), true) {
				tx.Prefetch()
			}
			if c.messageEntries {
				return cloneResponse(msg, q.ID, remaining), nil
			}
			return unpackWire(w, q.ID, remaining)
		case c.staleWindow > 0 && now.Before(e.expires.Add(c.staleWindow)):
			// RFC 8767 serve-stale: answer immediately from the expired
			// entry while one background refresh re-populates it — the
			// client never waits on the upstream.
			sh.lru.MoveToFront(e.elem)
			sh.stats.StaleHits++
			_, inflight := sh.flights[string(kb)]
			msg := e.msg
			var w []byte
			if !c.messageEntries {
				w = append([]byte(nil), e.wire...)
			}
			sh.mu.Unlock()
			tx.TraceSpan(qtrace.PhaseCache, tl)
			tx.SetCache(telemetry.CacheStaleHit)
			if !inflight {
				c.maybeRefresh(sh, string(kb), false)
			}
			if c.messageEntries {
				return cloneResponse(msg, q.ID, StaleTTL), nil
			}
			return unpackWire(w, q.ID, StaleTTL)
		default:
			sh.removeLocked(e)
		}
	}
	// Miss: join or start a flight.
	if f, ok := sh.flights[string(kb)]; ok {
		sh.stats.Coalesced++
		sh.mu.Unlock()
		tx.TraceSpan(qtrace.PhaseCache, tl)
		tx.SetCache(telemetry.CacheCoalesced)
		select {
		case <-f.done:
			if f.err != nil {
				return nil, f.err
			}
			return cloneResponse(f.resp, q.ID, 0), nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	k := string(kb)
	f := &flight{done: make(chan struct{})}
	sh.flights[k] = f
	sh.stats.Misses++
	sh.mu.Unlock()
	tx.TraceSpan(qtrace.PhaseCache, tl)
	tx.SetCache(telemetry.CacheMiss)

	// The flight is shared by every coalesced caller, so it must not die
	// with the leader's client: detach from the leader's cancellation but
	// keep its deadline, so a proxy-level upstream timeout still bounds
	// the exchange while a mid-flight disconnect no longer poisons the
	// other waiters with SERVFAIL.
	exCtx := context.WithoutCancel(ctx)
	if deadline, ok := ctx.Deadline(); ok {
		var cancel context.CancelFunc
		exCtx, cancel = context.WithDeadline(exCtx, deadline)
		defer cancel()
	}
	resp, err := c.upstream.Exchange(exCtx, q)
	f.resp, f.err = resp, err

	// The admission span covers entry packing, the admission filter and
	// the insert (evictions included) — the post-upstream cost of a miss.
	ta := tx.TraceStart()
	var e *entry
	if err == nil && cacheable(resp) {
		e = c.buildEntry(k, resp)
	}

	evicted, rejected := 0, false
	sh.mu.Lock()
	delete(sh.flights, k)
	if e != nil {
		evicted, rejected = c.insertLocked(sh, e, h)
	}
	sh.mu.Unlock()
	tx.TraceSpan(qtrace.PhaseAdmit, ta)
	tx.CacheEvicted(evicted)
	if rejected {
		tx.CacheAdmissionRejected()
	}
	close(f.done)
	if err != nil {
		return nil, err
	}
	return cloneResponse(resp, q.ID, 0), nil
}

// buildEntry packs resp into an immutable cache entry (or records the
// message itself in message-entry mode). It runs outside the shard lock —
// packing is the expensive part of a miss's insert, and the miss has
// already paid an upstream round trip. A response the codec cannot
// re-pack (never seen in practice: it was just unpacked by the transport)
// is simply not cached.
func (c *Cache) buildEntry(k string, resp *dnswire.Message) *entry {
	ttl := c.clampTTL(c.ttlOf(resp))
	e := &entry{
		key:      k,
		negative: negative(resp),
		ttl:      ttl,
		expires:  c.now().Add(ttl),
	}
	if c.messageEntries {
		e.msg = resp
		return e
	}
	wire, err := resp.Pack()
	if err != nil {
		return nil
	}
	offsets, err := dnswire.TTLOffsets(wire)
	if err != nil {
		return nil
	}
	e.wire = wire
	e.toffs = dnswire.PackTTLOffsets(nil, offsets)
	return e
}

// unpackWire rebuilds a Message from a copy of an entry's packed bytes: a
// fresh unpack shares no mutable state with the cache, which is what lets
// every caller mutate its response freely (the shared-EDNS hazard the old
// deep clone left open). The unpack cannot fail — the bytes came from our
// own packer — but the error is propagated rather than swallowed.
func unpackWire(wire []byte, id uint16, remaining time.Duration) (*dnswire.Message, error) {
	m := new(dnswire.Message)
	if err := m.Unpack(wire); err != nil {
		return nil, err
	}
	m.ID = id
	if remaining > 0 {
		rem := uint32(remaining / time.Second)
		for _, rrs := range [][]dnswire.ResourceRecord{m.Answers, m.Authorities, m.Additionals} {
			for i := range rrs {
				if rrs[i].TTL > rem {
					rrs[i].TTL = rem
				}
			}
		}
	}
	return m, nil
}

// removeLocked unlinks an entry and releases its byte accounting (its arena
// bytes stay dead in their slab until the next epoch rotation). Caller
// holds sh.mu.
func (sh *shard) removeLocked(e *entry) {
	delete(sh.entries, e.key)
	sh.lru.Remove(e.elem)
	sh.bytes -= int64(e.cost)
	sh.wireBytes -= len(e.wire) + len(e.toffs)
}

// needsEvict reports whether installing one more entry of the given cost
// would push the shard past either bound. Caller holds sh.mu.
func (sh *shard) needsEvict(cost int) bool {
	return len(sh.entries)+1 > sh.maxEntries ||
		(sh.budget > 0 && sh.bytes+int64(cost) > sh.budget)
}

// admitLocked runs the TinyLFU admission duel for a candidate that would
// evict: walking from the LRU tail, it accumulates the victims that would
// have to go for the candidate to fit. A victim already expired past any
// stale window is dead weight and never vetoes; a live victim vetoes when
// its estimated frequency is at least the candidate's — ties keep the
// incumbent, which is what stops a stream of once-asked names from
// churning an established working set. Caller holds sh.mu.
func (c *Cache) admitLocked(sh *shard, h uint64, cost int) bool {
	cf := sh.sk.estimate(h)
	now := c.now()
	freedBytes, freed := int64(0), 0
	for el := sh.lru.Back(); el != nil; el = el.Prev() {
		if len(sh.entries)-freed+1 <= sh.maxEntries &&
			(sh.budget <= 0 || sh.bytes-freedBytes+int64(cost) <= sh.budget) {
			break
		}
		v := el.Value.(*entry)
		if now.Before(v.expires.Add(c.staleWindow)) && sh.sk.estimate(v.hash) >= cf {
			return false
		}
		freedBytes += int64(v.cost)
		freed++
	}
	return true
}

// placeLocked copies e's payload into the shard's arena — one block holding
// the packed response followed by its packed TTL offsets — and re-points
// e.wire and e.toffs into it. When the epoch's handed-out bytes outweigh
// the live payload by more than a slab of slack, the shard rotates first:
// compaction then reclaims more than it copies. Caller holds sh.mu.
func (c *Cache) placeLocked(sh *shard, e *entry) {
	need := len(e.wire) + len(e.toffs)
	if sh.arena.used+need > 2*(sh.wireBytes+need)+sh.arena.slabSize {
		c.rotateLocked(sh)
	}
	w := len(e.wire)
	block := sh.arena.alloc(need)
	copy(block, e.wire)
	copy(block[w:], e.toffs)
	e.wire = block[:w:w]
	e.toffs = block[w:]
}

// rotateLocked starts a fresh arena epoch: live entries are compacted into
// new slabs, entries expired past any stale window are dropped on the way
// (rotation doubles as the expiry sweep, and the drops count as
// evictions), and the retired slabs are recycled onto the free list.
// Caller holds sh.mu.
func (c *Cache) rotateLocked(sh *shard) {
	retired := sh.arena.beginEpoch()
	now := c.now()
	for el := sh.lru.Front(); el != nil; {
		next := el.Next()
		e := el.Value.(*entry)
		if !now.Before(e.expires.Add(c.staleWindow)) {
			sh.removeLocked(e)
			sh.stats.Evictions++
		} else {
			w := len(e.wire)
			block := sh.arena.alloc(w + len(e.toffs))
			copy(block, e.wire)
			copy(block[w:], e.toffs)
			e.wire = block[:w:w]
			e.toffs = block[w:]
		}
		el = next
	}
	sh.arena.recycle(retired)
	sh.stats.ArenaEpochs++
}

// insertLocked installs e — replacing any existing entry for its key, as a
// background refresh of a still-present stale entry does; replacement
// bypasses the admission filter, because a refresh that first dropped the
// old entry and then lost the duel would lose the name entirely — and
// evicts past the shard bounds. It reports the eviction count and whether
// admission refused the insert. Caller holds sh.mu.
func (c *Cache) insertLocked(sh *shard, e *entry, h uint64) (evicted int, rejected bool) {
	e.hash = h
	block := 0
	if !c.messageEntries {
		block = len(e.wire) + len(e.toffs)
	}
	e.cost = entryOverhead + len(e.key) + block
	if sh.budget > 0 && int64(e.cost) > sh.budget {
		// Larger than the whole shard's budget: uncacheable at this size.
		sh.stats.AdmissionRejects++
		return 0, true
	}
	old, replacing := sh.entries[e.key]
	if !replacing && sh.sk != nil && sh.needsEvict(e.cost) &&
		!c.admitLocked(sh, h, e.cost) {
		sh.stats.AdmissionRejects++
		return 0, true
	}
	if replacing {
		sh.removeLocked(old)
	}
	if !c.messageEntries {
		c.placeLocked(sh, e)
	}
	e.elem = sh.lru.PushFront(e)
	sh.entries[e.key] = e
	sh.bytes += int64(e.cost)
	sh.wireBytes += block
	for len(sh.entries) > sh.maxEntries || (sh.budget > 0 && sh.bytes > sh.budget) {
		oldest := sh.lru.Back()
		if oldest == nil {
			break
		}
		sh.removeLocked(oldest.Value.(*entry))
		sh.stats.Evictions++
		evicted++
	}
	return evicted, false
}

// maybeRefresh starts a background singleflight refresh of key k unless an
// exchange for it is already in flight, reporting whether this call
// started one. prefetch labels the trigger for stats. Caller must not hold
// sh.mu.
func (c *Cache) maybeRefresh(sh *shard, k string, prefetch bool) bool {
	sh.mu.Lock()
	if _, inflight := sh.flights[k]; inflight {
		sh.mu.Unlock()
		return false
	}
	f := &flight{done: make(chan struct{})}
	sh.flights[k] = f
	sh.stats.Refreshes++
	if prefetch {
		sh.stats.Prefetches++
	}
	sh.mu.Unlock()
	go c.refresh(sh, k, f)
	return true
}

// refresh is the background half of serve-stale and prefetch: one upstream
// exchange re-populating k while foreground queries keep answering from
// the existing entry. It holds the key's singleflight slot, so concurrent
// misses for the same name join it instead of going upstream themselves.
// A failed refresh leaves the old entry in place — within a serve-stale
// window that is exactly the availability RFC 8767 wants.
func (c *Cache) refresh(sh *shard, k string, f *flight) {
	ctx, cancel := context.WithTimeout(context.Background(), c.refreshTimeout)
	defer cancel()
	tx := c.tel.BeginBackground()
	defer tx.Finish()
	resp, err := c.upstream.Exchange(telemetry.NewContext(ctx, tx), refreshQuery(k))
	f.resp, f.err = resp, err
	var e *entry
	if err == nil && cacheable(resp) {
		e = c.buildEntry(k, resp)
	}
	rejected := false
	sh.mu.Lock()
	delete(sh.flights, k)
	if e != nil {
		_, rejected = c.insertLocked(sh, e, maphash.Bytes(c.seed, []byte(k)))
	}
	sh.mu.Unlock()
	if rejected {
		tx.CacheAdmissionRejected()
	}
	close(f.done)
}

// refreshQuery rebuilds the question a cache key encodes — the canonical
// name followed by four octets of type and class — into a fresh query
// message for the background refresh.
func refreshQuery(k string) *dnswire.Message {
	name := dnswire.Name(k[:len(k)-4])
	qtype := dnswire.Type(uint16(k[len(k)-4])<<8 | uint16(k[len(k)-3]))
	class := dnswire.Class(uint16(k[len(k)-2])<<8 | uint16(k[len(k)-1]))
	q := dnswire.NewQuery(0, name, qtype)
	q.Questions[0].Class = class
	return q
}

func (c *Cache) clampTTL(ttl time.Duration) time.Duration {
	if ttl < c.minTTL {
		ttl = c.minTTL
	}
	if c.maxTTL > 0 && ttl > c.maxTTL {
		ttl = c.maxTTL
	}
	return ttl
}

// cacheable accepts positive answers and NXDOMAIN/NODATA (negative caching
// per RFC 2308).
func cacheable(resp *dnswire.Message) bool {
	if resp == nil || resp.Truncated {
		return false
	}
	switch resp.RCode {
	case dnswire.RCodeSuccess, dnswire.RCodeNameError:
		return true
	}
	return false
}

// negative reports whether resp is an RFC 2308 negative answer: NXDOMAIN,
// or NOERROR with an empty answer section (NODATA).
func negative(resp *dnswire.Message) bool {
	return resp.RCode == dnswire.RCodeNameError ||
		(resp.RCode == dnswire.RCodeSuccess && len(resp.Answers) == 0)
}

// ttlOf derives the cache lifetime of a response: the smallest answer-
// section TTL for positive answers, or the RFC 2308 §3/§5 negative TTL —
// min(SOA record TTL, SOA MINIMUM field) from the authority section — for
// negative ones, capped at the configured negative ceiling.
func (c *Cache) ttlOf(resp *dnswire.Message) time.Duration {
	if negative(resp) {
		return c.negativeTTL(resp)
	}
	min := time.Duration(-1)
	for _, section := range [][]dnswire.ResourceRecord{resp.Answers, resp.Authorities} {
		for _, rr := range section {
			ttl := time.Duration(rr.TTL) * time.Second
			if min < 0 || ttl < min {
				min = ttl
			}
		}
	}
	if min < 0 {
		return c.negTTL
	}
	return min
}

// negativeTTL implements the RFC 2308 negative-TTL derivation.
func (c *Cache) negativeTTL(resp *dnswire.Message) time.Duration {
	for _, rr := range resp.Authorities {
		soa, ok := rr.Data.(*dnswire.SOA)
		if !ok {
			continue
		}
		secs := rr.TTL
		if soa.Minimum < secs {
			secs = soa.Minimum
		}
		ttl := time.Duration(secs) * time.Second
		if c.negTTL > 0 && ttl > c.negTTL {
			ttl = c.negTTL
		}
		return ttl
	}
	return c.negTTL
}

// cloneResponse copies resp, restamps the transaction ID, and decays TTLs
// by the entry's age (remaining > 0 selects decay toward `remaining`). It
// serves singleflight waiters (whose shared response is a live Message) and
// message-entry-mode hits; the RData payloads and EDNS are shared between
// the clones, which is the shallowness the wire-entry default eliminates.
func cloneResponse(resp *dnswire.Message, id uint16, remaining time.Duration) *dnswire.Message {
	cp := *resp
	cp.ID = id
	decay := func(rrs []dnswire.ResourceRecord) []dnswire.ResourceRecord {
		if remaining <= 0 {
			return append([]dnswire.ResourceRecord(nil), rrs...)
		}
		out := make([]dnswire.ResourceRecord, len(rrs))
		copy(out, rrs)
		rem := uint32(remaining / time.Second)
		for i := range out {
			if out[i].TTL > rem {
				out[i].TTL = rem
			}
		}
		return out
	}
	cp.Answers = decay(resp.Answers)
	cp.Authorities = decay(resp.Authorities)
	cp.Additionals = decay(resp.Additionals)
	return &cp
}

var _ dnstransport.Resolver = (*Cache)(nil)

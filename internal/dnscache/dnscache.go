// Package dnscache provides a TTL-respecting, size-bounded cache that wraps
// any Resolver, plus in-flight query coalescing (singleflight): concurrent
// identical queries share one upstream exchange.
//
// The cache is hash-partitioned into shards, each with its own lock, LRU
// list and in-flight table, so the hit path never funnels through a global
// mutex — the property that lets a forwarding proxy serve hot names from
// many connections at full core count. Negative answers (NXDOMAIN and
// NODATA) are cached with the RFC 2308 TTL: the minimum of the authority
// SOA record's TTL and its MINIMUM field.
//
// The paper deliberately cleared caches between page loads to measure worst
// cases; this package is the production counterpart — and the knob for the
// cache ablation, which shows how quickly a warm cache erases the DoH
// resolution-time penalty (almost 25% of the paper's 2.18M crawl queries
// went to just fifteen names).
package dnscache

import (
	"container/list"
	"context"
	"hash/maphash"
	"sync"
	"time"

	"dohcost/internal/dnstransport"
	"dohcost/internal/dnswire"
	"dohcost/internal/telemetry"
)

// key identifies a cacheable question.
type key struct {
	name  dnswire.Name
	qtype dnswire.Type
	class dnswire.Class
}

// entry is one cached response.
type entry struct {
	key     key
	resp    *dnswire.Message
	expires time.Time
	elem    *list.Element
}

// Stats counts cache effectiveness, aggregated across shards. The JSON
// tags match the snake_case style of the telemetry snapshot, which
// embeds these counters in the proxy's /debug/cost report.
type Stats struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Coalesced int64 `json:"coalesced"` // queries answered by joining an in-flight exchange
	Evictions int64 `json:"evictions"`
}

func (s *Stats) add(o Stats) {
	s.Hits += o.Hits
	s.Misses += o.Misses
	s.Coalesced += o.Coalesced
	s.Evictions += o.Evictions
}

// flight is one in-progress upstream exchange shared by coalesced callers.
type flight struct {
	done chan struct{}
	resp *dnswire.Message
	err  error
}

// shard is one lock domain: a partition of the key space with its own LRU
// and singleflight table.
type shard struct {
	mu         sync.Mutex
	entries    map[key]*entry
	lru        *list.List // front = most recent
	flights    map[key]*flight
	stats      Stats
	maxEntries int
}

// Cache is a sharded caching resolver. Safe for concurrent use.
type Cache struct {
	upstream dnstransport.Resolver
	shards   []*shard
	seed     maphash.Seed

	// maxEntries bounds the cache across all shards (LRU eviction per
	// shard); 0 means 4096.
	maxEntries int
	// nshards is the shard count, rounded up to a power of two; 0 means 16.
	nshards int
	// minTTL/maxTTL clamp record TTLs (resolver-style cache policy).
	minTTL, maxTTL time.Duration
	// negTTL caps negative-cache TTLs and is the fallback when a negative
	// response carries no SOA (RFC 2308 leaves that response uncacheable;
	// we hold it briefly, the way production resolvers do).
	negTTL time.Duration
	// now is the clock, replaceable in tests.
	now func() time.Time
}

// Option configures a Cache.
type Option func(*Cache)

// WithMaxEntries bounds the cache size across all shards.
func WithMaxEntries(n int) Option { return func(c *Cache) { c.maxEntries = n } }

// WithTTLBounds clamps cached TTLs.
func WithTTLBounds(min, max time.Duration) Option {
	return func(c *Cache) { c.minTTL, c.maxTTL = min, max }
}

// WithShards sets the number of lock partitions (rounded up to a power of
// two). One shard reproduces the classic single-mutex cache; the default
// 16 keeps the hit path off any global lock.
func WithShards(n int) Option { return func(c *Cache) { c.nshards = n } }

// WithNegativeTTL caps how long NXDOMAIN/NODATA answers are cached; it is
// also the TTL used when a negative response carries no SOA.
func WithNegativeTTL(d time.Duration) Option { return func(c *Cache) { c.negTTL = d } }

// withClock replaces the clock (tests).
func withClock(now func() time.Time) Option { return func(c *Cache) { c.now = now } }

// New wraps upstream with a cache.
func New(upstream dnstransport.Resolver, opts ...Option) *Cache {
	c := &Cache{
		upstream:   upstream,
		maxEntries: 4096,
		nshards:    16,
		maxTTL:     24 * time.Hour,
		negTTL:     DefaultNegativeTTL,
		now:        time.Now,
		seed:       maphash.MakeSeed(),
	}
	for _, o := range opts {
		o(c)
	}
	n := 1
	for n < c.nshards {
		n <<= 1
	}
	// A bound smaller than the shard count would overshoot (every shard
	// holds at least one entry), so shrink the partition count until the
	// configured bound is exact.
	for n > 1 && c.maxEntries/n < 1 {
		n >>= 1
	}
	c.nshards = n
	perShard, extra := c.maxEntries/n, c.maxEntries%n
	for i := 0; i < n; i++ {
		max := perShard
		if i < extra {
			max++
		}
		c.shards = append(c.shards, &shard{
			entries:    make(map[key]*entry),
			lru:        list.New(),
			flights:    make(map[key]*flight),
			maxEntries: max,
		})
	}
	return c
}

// DefaultNegativeTTL is the fallback negative-caching duration for
// responses without an SOA, and the default cap for those with one.
const DefaultNegativeTTL = 30 * time.Second

// shardFor hashes a key to its partition. maphash.String is the runtime's
// AES-based string hash — cheap enough that sharding never shows up next
// to the per-hit response clone.
func (c *Cache) shardFor(k key) *shard {
	h := maphash.String(c.seed, string(k.name))
	// Fold type and class in with an xor-multiply mix.
	h ^= uint64(k.qtype)<<16 | uint64(k.class)
	h *= 0x9e3779b97f4a7c15
	return c.shards[(h>>32)&uint64(len(c.shards)-1)]
}

// Close implements Resolver; it closes the upstream.
func (c *Cache) Close() error { return c.upstream.Close() }

// Stats snapshots the counters, summed over shards.
func (c *Cache) Stats() Stats {
	var s Stats
	for _, sh := range c.shards {
		sh.mu.Lock()
		s.add(sh.stats)
		sh.mu.Unlock()
	}
	return s
}

// Len reports the number of live entries (expired ones may linger until
// touched).
func (c *Cache) Len() int {
	n := 0
	for _, sh := range c.shards {
		sh.mu.Lock()
		n += len(sh.entries)
		sh.mu.Unlock()
	}
	return n
}

// Shards reports the shard count.
func (c *Cache) Shards() int { return len(c.shards) }

// Flush drops everything.
func (c *Cache) Flush() {
	for _, sh := range c.shards {
		sh.mu.Lock()
		sh.entries = make(map[key]*entry)
		sh.lru.Init()
		sh.mu.Unlock()
	}
}

// Exchange implements Resolver. Cache hits are answered with the stored
// response re-stamped with the query's ID and decayed TTLs; misses go
// upstream, coalescing concurrent identical questions into one exchange.
// Only the query's shard is locked, and never across the upstream call.
// The query's telemetry Transaction (if its server began one) learns the
// outcome — hit, negative hit, miss, coalesced or bypass — outside the
// shard lock.
func (c *Cache) Exchange(ctx context.Context, q *dnswire.Message) (*dnswire.Message, error) {
	tx := telemetry.FromContext(ctx)
	qq := q.Question1()
	if len(q.Questions) != 1 || qq.Type == dnswire.TypeANY {
		// Uncacheable shapes pass straight through.
		tx.SetCache(telemetry.CacheBypass)
		return c.upstream.Exchange(ctx, q)
	}
	k := key{name: qq.Name.Canonical(), qtype: qq.Type, class: qq.Class}
	sh := c.shardFor(k)

	sh.mu.Lock()
	if e, ok := sh.entries[k]; ok {
		now := c.now()
		if now.Before(e.expires) {
			sh.lru.MoveToFront(e.elem)
			sh.stats.Hits++
			resp, expires := e.resp, e.expires
			sh.mu.Unlock()
			if negative(resp) {
				tx.SetCache(telemetry.CacheNegativeHit)
			} else {
				tx.SetCache(telemetry.CacheHit)
			}
			return cloneResponse(resp, q.ID, expires.Sub(now)), nil
		}
		sh.removeLocked(e)
	}
	// Miss: join or start a flight.
	if f, ok := sh.flights[k]; ok {
		sh.stats.Coalesced++
		sh.mu.Unlock()
		tx.SetCache(telemetry.CacheCoalesced)
		select {
		case <-f.done:
			if f.err != nil {
				return nil, f.err
			}
			return cloneResponse(f.resp, q.ID, 0), nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	f := &flight{done: make(chan struct{})}
	sh.flights[k] = f
	sh.stats.Misses++
	sh.mu.Unlock()
	tx.SetCache(telemetry.CacheMiss)

	// The flight is shared by every coalesced caller, so it must not die
	// with the leader's client: detach from the leader's cancellation but
	// keep its deadline, so a proxy-level upstream timeout still bounds
	// the exchange while a mid-flight disconnect no longer poisons the
	// other waiters with SERVFAIL.
	exCtx := context.WithoutCancel(ctx)
	if deadline, ok := ctx.Deadline(); ok {
		var cancel context.CancelFunc
		exCtx, cancel = context.WithDeadline(exCtx, deadline)
		defer cancel()
	}
	resp, err := c.upstream.Exchange(exCtx, q)
	f.resp, f.err = resp, err

	evicted := 0
	sh.mu.Lock()
	delete(sh.flights, k)
	if err == nil && cacheable(resp) {
		ttl := c.clampTTL(c.ttlOf(resp))
		e := &entry{key: k, resp: resp, expires: c.now().Add(ttl)}
		e.elem = sh.lru.PushFront(e)
		sh.entries[k] = e
		for len(sh.entries) > sh.maxEntries {
			oldest := sh.lru.Back()
			if oldest == nil {
				break
			}
			sh.removeLocked(oldest.Value.(*entry))
			sh.stats.Evictions++
			evicted++
		}
	}
	sh.mu.Unlock()
	tx.CacheEvicted(evicted)
	close(f.done)
	if err != nil {
		return nil, err
	}
	return cloneResponse(resp, q.ID, 0), nil
}

// removeLocked unlinks an entry. Caller holds sh.mu.
func (sh *shard) removeLocked(e *entry) {
	delete(sh.entries, e.key)
	sh.lru.Remove(e.elem)
}

func (c *Cache) clampTTL(ttl time.Duration) time.Duration {
	if ttl < c.minTTL {
		ttl = c.minTTL
	}
	if c.maxTTL > 0 && ttl > c.maxTTL {
		ttl = c.maxTTL
	}
	return ttl
}

// cacheable accepts positive answers and NXDOMAIN/NODATA (negative caching
// per RFC 2308).
func cacheable(resp *dnswire.Message) bool {
	if resp == nil || resp.Truncated {
		return false
	}
	switch resp.RCode {
	case dnswire.RCodeSuccess, dnswire.RCodeNameError:
		return true
	}
	return false
}

// negative reports whether resp is an RFC 2308 negative answer: NXDOMAIN,
// or NOERROR with an empty answer section (NODATA).
func negative(resp *dnswire.Message) bool {
	return resp.RCode == dnswire.RCodeNameError ||
		(resp.RCode == dnswire.RCodeSuccess && len(resp.Answers) == 0)
}

// ttlOf derives the cache lifetime of a response: the smallest answer-
// section TTL for positive answers, or the RFC 2308 §3/§5 negative TTL —
// min(SOA record TTL, SOA MINIMUM field) from the authority section — for
// negative ones, capped at the configured negative ceiling.
func (c *Cache) ttlOf(resp *dnswire.Message) time.Duration {
	if negative(resp) {
		return c.negativeTTL(resp)
	}
	min := time.Duration(-1)
	for _, section := range [][]dnswire.ResourceRecord{resp.Answers, resp.Authorities} {
		for _, rr := range section {
			ttl := time.Duration(rr.TTL) * time.Second
			if min < 0 || ttl < min {
				min = ttl
			}
		}
	}
	if min < 0 {
		return c.negTTL
	}
	return min
}

// negativeTTL implements the RFC 2308 negative-TTL derivation.
func (c *Cache) negativeTTL(resp *dnswire.Message) time.Duration {
	for _, rr := range resp.Authorities {
		soa, ok := rr.Data.(*dnswire.SOA)
		if !ok {
			continue
		}
		secs := rr.TTL
		if soa.Minimum < secs {
			secs = soa.Minimum
		}
		ttl := time.Duration(secs) * time.Second
		if c.negTTL > 0 && ttl > c.negTTL {
			ttl = c.negTTL
		}
		return ttl
	}
	return c.negTTL
}

// cloneResponse copies resp, restamps the transaction ID, and decays TTLs
// by the entry's age (remaining > 0 selects decay toward `remaining`).
func cloneResponse(resp *dnswire.Message, id uint16, remaining time.Duration) *dnswire.Message {
	cp := *resp
	cp.ID = id
	decay := func(rrs []dnswire.ResourceRecord) []dnswire.ResourceRecord {
		if remaining <= 0 {
			return append([]dnswire.ResourceRecord(nil), rrs...)
		}
		out := make([]dnswire.ResourceRecord, len(rrs))
		copy(out, rrs)
		rem := uint32(remaining / time.Second)
		for i := range out {
			if out[i].TTL > rem {
				out[i].TTL = rem
			}
		}
		return out
	}
	cp.Answers = decay(resp.Answers)
	cp.Authorities = decay(resp.Authorities)
	cp.Additionals = decay(resp.Additionals)
	return &cp
}

var _ dnstransport.Resolver = (*Cache)(nil)

// Package dnscache provides a TTL-respecting, size-bounded cache that wraps
// any Resolver, plus in-flight query coalescing (singleflight): concurrent
// identical queries share one upstream exchange.
//
// The paper deliberately cleared caches between page loads to measure worst
// cases; this package is the production counterpart — and the knob for the
// cache ablation, which shows how quickly a warm cache erases the DoH
// resolution-time penalty (almost 25% of the paper's 2.18M crawl queries
// went to just fifteen names).
package dnscache

import (
	"container/list"
	"context"
	"sync"
	"time"

	"dohcost/internal/dnstransport"
	"dohcost/internal/dnswire"
)

// key identifies a cacheable question.
type key struct {
	name  dnswire.Name
	qtype dnswire.Type
	class dnswire.Class
}

// entry is one cached response.
type entry struct {
	key     key
	resp    *dnswire.Message
	expires time.Time
	elem    *list.Element
}

// Stats counts cache effectiveness.
type Stats struct {
	Hits      int64
	Misses    int64
	Coalesced int64 // queries answered by joining an in-flight exchange
	Evictions int64
}

// Cache is a caching resolver. Safe for concurrent use.
type Cache struct {
	upstream dnstransport.Resolver

	// MaxEntries bounds the cache (LRU eviction); 0 means 4096.
	maxEntries int
	// MinTTL/MaxTTL clamp record TTLs (resolver-style cache policy).
	minTTL, maxTTL time.Duration
	// now is the clock, replaceable in tests.
	now func() time.Time

	mu      sync.Mutex
	entries map[key]*entry
	lru     *list.List // front = most recent
	flights map[key]*flight
	stats   Stats
}

// flight is one in-progress upstream exchange shared by coalesced callers.
type flight struct {
	done chan struct{}
	resp *dnswire.Message
	err  error
}

// Option configures a Cache.
type Option func(*Cache)

// WithMaxEntries bounds the cache size.
func WithMaxEntries(n int) Option { return func(c *Cache) { c.maxEntries = n } }

// WithTTLBounds clamps cached TTLs.
func WithTTLBounds(min, max time.Duration) Option {
	return func(c *Cache) { c.minTTL, c.maxTTL = min, max }
}

// withClock replaces the clock (tests).
func withClock(now func() time.Time) Option { return func(c *Cache) { c.now = now } }

// New wraps upstream with a cache.
func New(upstream dnstransport.Resolver, opts ...Option) *Cache {
	c := &Cache{
		upstream:   upstream,
		maxEntries: 4096,
		maxTTL:     24 * time.Hour,
		now:        time.Now,
		entries:    make(map[key]*entry),
		lru:        list.New(),
		flights:    make(map[key]*flight),
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// Close implements Resolver; it closes the upstream.
func (c *Cache) Close() error { return c.upstream.Close() }

// Stats snapshots the counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Len reports the number of live entries (expired ones may linger until
// touched).
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Flush drops everything.
func (c *Cache) Flush() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = make(map[key]*entry)
	c.lru.Init()
}

// Exchange implements Resolver. Cache hits are answered with the stored
// response re-stamped with the query's ID and decayed TTLs; misses go
// upstream, coalescing concurrent identical questions into one exchange.
func (c *Cache) Exchange(ctx context.Context, q *dnswire.Message) (*dnswire.Message, error) {
	qq := q.Question1()
	if len(q.Questions) != 1 || qq.Type == dnswire.TypeANY {
		// Uncacheable shapes pass straight through.
		return c.upstream.Exchange(ctx, q)
	}
	k := key{name: qq.Name.Canonical(), qtype: qq.Type, class: qq.Class}

	c.mu.Lock()
	if e, ok := c.entries[k]; ok {
		now := c.now()
		if now.Before(e.expires) {
			c.lru.MoveToFront(e.elem)
			c.stats.Hits++
			resp := cloneResponse(e.resp, q.ID, e.expires.Sub(now))
			c.mu.Unlock()
			return resp, nil
		}
		c.removeLocked(e)
	}
	// Miss: join or start a flight.
	if f, ok := c.flights[k]; ok {
		c.stats.Coalesced++
		c.mu.Unlock()
		select {
		case <-f.done:
			if f.err != nil {
				return nil, f.err
			}
			return cloneResponse(f.resp, q.ID, 0), nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	f := &flight{done: make(chan struct{})}
	c.flights[k] = f
	c.stats.Misses++
	c.mu.Unlock()

	resp, err := c.upstream.Exchange(ctx, q)
	f.resp, f.err = resp, err

	c.mu.Lock()
	delete(c.flights, k)
	if err == nil && cacheable(resp) {
		ttl := c.clampTTL(minTTLOf(resp))
		e := &entry{key: k, resp: resp, expires: c.now().Add(ttl)}
		e.elem = c.lru.PushFront(e)
		c.entries[k] = e
		for len(c.entries) > c.maxEntries {
			oldest := c.lru.Back()
			if oldest == nil {
				break
			}
			c.removeLocked(oldest.Value.(*entry))
			c.stats.Evictions++
		}
	}
	c.mu.Unlock()
	close(f.done)
	if err != nil {
		return nil, err
	}
	return cloneResponse(resp, q.ID, 0), nil
}

func (c *Cache) removeLocked(e *entry) {
	delete(c.entries, e.key)
	c.lru.Remove(e.elem)
}

func (c *Cache) clampTTL(ttl time.Duration) time.Duration {
	if ttl < c.minTTL {
		ttl = c.minTTL
	}
	if c.maxTTL > 0 && ttl > c.maxTTL {
		ttl = c.maxTTL
	}
	return ttl
}

// cacheable accepts positive answers and NXDOMAIN/NODATA (negative caching
// per RFC 2308, using the answer TTLs or a conservative floor).
func cacheable(resp *dnswire.Message) bool {
	if resp == nil || resp.Truncated {
		return false
	}
	switch resp.RCode {
	case dnswire.RCodeSuccess, dnswire.RCodeNameError:
		return true
	}
	return false
}

// minTTLOf returns the smallest record TTL, or a negative-cache floor for
// answerless responses.
func minTTLOf(resp *dnswire.Message) time.Duration {
	const negativeTTL = 30 * time.Second
	min := time.Duration(-1)
	for _, section := range [][]dnswire.ResourceRecord{resp.Answers, resp.Authorities} {
		for _, rr := range section {
			ttl := time.Duration(rr.TTL) * time.Second
			if min < 0 || ttl < min {
				min = ttl
			}
		}
	}
	if min < 0 {
		return negativeTTL
	}
	return min
}

// cloneResponse copies resp, restamps the transaction ID, and decays TTLs
// by the entry's age (remaining > 0 selects decay toward `remaining`).
func cloneResponse(resp *dnswire.Message, id uint16, remaining time.Duration) *dnswire.Message {
	cp := *resp
	cp.ID = id
	decay := func(rrs []dnswire.ResourceRecord) []dnswire.ResourceRecord {
		if remaining <= 0 {
			return append([]dnswire.ResourceRecord(nil), rrs...)
		}
		out := make([]dnswire.ResourceRecord, len(rrs))
		copy(out, rrs)
		rem := uint32(remaining / time.Second)
		for i := range out {
			if out[i].TTL > rem {
				out[i].TTL = rem
			}
		}
		return out
	}
	cp.Answers = decay(resp.Answers)
	cp.Authorities = decay(resp.Authorities)
	cp.Additionals = decay(resp.Additionals)
	return &cp
}

var _ dnstransport.Resolver = (*Cache)(nil)

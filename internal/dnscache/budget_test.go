package dnscache

import (
	"context"
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"
	"time"

	"dohcost/internal/dnswire"
)

// sizedUpstream answers TXT records whose padding varies deterministically
// with the query name, so byte-budget tests see realistic size spread.
type sizedUpstream struct {
	calls atomic.Int64
	ttl   uint32
}

func (u *sizedUpstream) Exchange(ctx context.Context, q *dnswire.Message) (*dnswire.Message, error) {
	u.calls.Add(1)
	r := q.Reply()
	name := string(q.Question1().Name)
	pad := 10 + (len(name)*37+int(name[0]))%180
	txt := make([]byte, pad)
	for i := range txt {
		txt[i] = 'x'
	}
	r.Answers = append(r.Answers, dnswire.ResourceRecord{
		Name: q.Question1().Name, Class: dnswire.ClassINET, TTL: u.ttl,
		Data: &dnswire.TXT{Strings: []string{string(txt)}},
	})
	return r, nil
}

func (u *sizedUpstream) Close() error { return nil }

// checkBudgetInvariants locks every shard and compares the incremental
// byte accounting against a shadow recount of the live entries: per-entry
// cost formula, shard totals, wire-byte totals and the budget ceiling.
// This is the property that catches leak-on-replace and stale-refresh
// double-count bugs.
func checkBudgetInvariants(t *testing.T, c *Cache) {
	t.Helper()
	for i, sh := range c.shards {
		sh.mu.Lock()
		var bytes int64
		wireBytes := 0
		for k, e := range sh.entries {
			want := entryOverhead + len(k) + len(e.wire) + len(e.toffs)
			if e.cost != want {
				t.Errorf("shard %d entry %q: cost %d, want %d", i, k, e.cost, want)
			}
			bytes += int64(e.cost)
			wireBytes += len(e.wire) + len(e.toffs)
		}
		if sh.bytes != bytes {
			t.Errorf("shard %d: accounted %d B, shadow recount %d B (%d entries)",
				i, sh.bytes, bytes, len(sh.entries))
		}
		if sh.wireBytes != wireBytes {
			t.Errorf("shard %d: wireBytes %d, shadow recount %d", i, sh.wireBytes, wireBytes)
		}
		if sh.budget > 0 && sh.bytes > sh.budget {
			t.Errorf("shard %d: %d B live exceeds budget %d B", i, sh.bytes, sh.budget)
		}
		sh.mu.Unlock()
	}
}

// drainFlights waits for every in-flight background exchange to settle, so
// invariant checks see a quiescent cache.
func drainFlights(c *Cache) {
	for {
		n := 0
		for _, sh := range c.shards {
			sh.mu.Lock()
			n += len(sh.flights)
			sh.mu.Unlock()
		}
		if n == 0 {
			return
		}
		time.Sleep(time.Millisecond)
	}
}

// TestMemoryBudgetInvariant runs a seeded property sequence — inserts of
// new names, hot hits, clock jumps over expiry and the stale window,
// serve-stale refreshes, wire-path hits — against a byte-budgeted TinyLFU
// cache with tiny arena slabs (frequent rotations), checking after every
// few operations that the incremental accounting exactly matches a shadow
// recount and never exceeds the budget.
func TestMemoryBudgetInvariant(t *testing.T) {
	var clock atomic.Int64
	clock.Store(time.Unix(5000, 0).UnixNano())
	up := &sizedUpstream{ttl: 60}
	c := New(up,
		withClock(func() time.Time { return time.Unix(0, clock.Load()) }),
		WithMemoryBudget(16<<10),
		WithShards(4),
		WithServeStale(30*time.Second),
		WithTinyLFU(),
		withArenaSlab(1<<10),
	)
	defer c.Close()

	rng := rand.New(rand.NewSource(42))
	ctx := context.Background()
	for i := 0; i < 3000; i++ {
		switch op := rng.Intn(10); {
		case op < 4: // fresh name: insert, evict or admission-reject
			name := dnswire.Name(fmt.Sprintf("new%d.budget.example.", rng.Intn(2000)))
			if _, err := c.Exchange(ctx, dnswire.NewQuery(uint16(i), name, dnswire.TypeA)); err != nil {
				t.Fatal(err)
			}
		case op < 7: // hot name: hit, stale hit, or refresh insert
			name := dnswire.Name(fmt.Sprintf("hot%d.budget.example.", rng.Intn(8)))
			if _, err := c.Exchange(ctx, dnswire.NewQuery(uint16(i), name, dnswire.TypeA)); err != nil {
				t.Fatal(err)
			}
		case op < 9: // wire-path hit on a hot name
			name := dnswire.Name(fmt.Sprintf("hot%d.budget.example.", rng.Intn(8)))
			fq, _ := fastParse(t, dnswire.NewQuery(uint16(i), name, dnswire.TypeA))
			c.ServeWire(nil, &fq, nil, 0)
		default: // age the cache: into and past TTL and stale window
			clock.Add(int64(time.Duration(10+rng.Intn(80)) * time.Second))
		}
		if i%50 == 0 {
			drainFlights(c)
			checkBudgetInvariants(t, c)
		}
	}
	drainFlights(c)
	checkBudgetInvariants(t, c)

	s := c.Stats()
	if s.BytesLive > c.MemoryBudget() {
		t.Errorf("BytesLive %d exceeds budget %d", s.BytesLive, c.MemoryBudget())
	}
	if s.BytesLive != c.BytesLive() {
		t.Errorf("Stats().BytesLive %d != BytesLive() %d", s.BytesLive, c.BytesLive())
	}
	if s.ArenaEpochs == 0 {
		t.Error("no arena rotations despite 1KiB slabs — the sequence never exercised compaction")
	}
}

// TestMemoryBudgetLiftsCountBound: a budget-only cache must not silently
// keep the 4096-entry default on top.
func TestMemoryBudgetLiftsCountBound(t *testing.T) {
	up := &sizedUpstream{ttl: 300}
	c := New(up, WithMemoryBudget(64<<20), WithShards(1))
	defer c.Close()
	for i := 0; i < 5000; i++ {
		c.Exchange(context.Background(), dnswire.NewQuery(1, dnswire.Name(fmt.Sprintf("l%d.example.", i)), dnswire.TypeA))
	}
	if c.Len() != 5000 {
		t.Errorf("entries = %d, want 5000 (count bound must be lifted under a roomy budget)", c.Len())
	}
	if s := c.Stats(); s.Evictions != 0 {
		t.Errorf("evictions = %d, want 0", s.Evictions)
	}
}

// TestSmallBudgetShrinksShardCount mirrors the entry-count shrink rule for
// byte budgets.
func TestSmallBudgetShrinksShardCount(t *testing.T) {
	up := &sizedUpstream{ttl: 300}
	c := New(up, WithMemoryBudget(4<<10)) // 16 shards would leave 256 B each
	defer c.Close()
	if c.Shards() != 2 {
		t.Errorf("shards = %d, want 2 (4KiB budget / 2KiB min per shard)", c.Shards())
	}
}

// TestOversizedEntryNotCached: an answer larger than a whole shard's
// budget is refused (and counted), not inserted over budget.
func TestOversizedEntryNotCached(t *testing.T) {
	up := &sizedUpstream{ttl: 300}
	small := New(up, WithMemoryBudget(minShardBudget), WithShards(1), withArenaSlab(minSlabSize))
	defer small.Close()
	// Drive insertLocked directly with a payload bigger than the whole
	// shard's budget — no upstream answers at that size here, but operators
	// can configure budgets smaller than a worst-case DNSSEC answer.
	sh := small.shards[0]
	e := &entry{key: "giant.example.", wire: make([]byte, int(sh.budget)+1)}
	sh.mu.Lock()
	_, rejected := small.insertLocked(sh, e, 1)
	sh.mu.Unlock()
	if !rejected {
		t.Fatal("entry larger than the shard budget was admitted")
	}
	if small.Len() != 0 {
		t.Errorf("oversized entry cached: %d entries", small.Len())
	}
	if s := small.Stats(); s.AdmissionRejects != 1 {
		t.Errorf("admission rejects = %d, want 1", s.AdmissionRejects)
	}
}

// TestTinyLFUProtectsWorkingSet floods a full byte-budgeted cache with
// one-hit wonders and checks the admission filter holds the hot set: the
// hot names stay answerable without new upstream traffic, and the flood is
// counted as admission rejects instead of evictions.
func TestTinyLFUProtectsWorkingSet(t *testing.T) {
	up := &sizedUpstream{ttl: 300}
	c := New(up, WithMemoryBudget(8<<10), WithShards(1), WithTinyLFU())
	defer c.Close()
	ctx := context.Background()

	// Establish a hot working set with real frequency.
	hot := make([]dnswire.Name, 6)
	for i := range hot {
		hot[i] = dnswire.Name(fmt.Sprintf("hot%d.tlfu.example.", i))
	}
	for round := 0; round < 8; round++ {
		for _, n := range hot {
			if _, err := c.Exchange(ctx, dnswire.NewQuery(1, n, dnswire.TypeA)); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Flood: hundreds of once-asked names against a budget that holds ~20
	// entries.
	for i := 0; i < 400; i++ {
		c.Exchange(ctx, dnswire.NewQuery(1, dnswire.Name(fmt.Sprintf("flood%d.tlfu.example.", i)), dnswire.TypeA))
	}

	before := up.calls.Load()
	for _, n := range hot {
		if _, err := c.Exchange(ctx, dnswire.NewQuery(2, n, dnswire.TypeA)); err != nil {
			t.Fatal(err)
		}
	}
	if got := up.calls.Load(); got != before {
		t.Errorf("hot set lost to the flood: %d upstream refetches", got-before)
	}
	if s := c.Stats(); s.AdmissionRejects == 0 {
		t.Errorf("flood admitted freely: %+v", s)
	}
	checkBudgetInvariants(t, c)
}

// TestRefreshReplaceKeepsAccounting drives the serve-stale refresh path —
// the replace-an-existing-entry insert — and checks the replacement
// neither double-counts nor rejects the refreshed entry.
func TestRefreshReplaceKeepsAccounting(t *testing.T) {
	var clock atomic.Int64
	clock.Store(time.Unix(7000, 0).UnixNano())
	up := &sizedUpstream{ttl: 10}
	c := New(up,
		withClock(func() time.Time { return time.Unix(0, clock.Load()) }),
		WithMemoryBudget(8<<10),
		WithShards(1),
		WithTinyLFU(),
		WithServeStale(time.Minute),
	)
	defer c.Close()
	ctx := context.Background()

	if _, err := c.Exchange(ctx, dnswire.NewQuery(1, "stale.example.", dnswire.TypeA)); err != nil {
		t.Fatal(err)
	}
	clock.Add(int64(20 * time.Second)) // expired, within the stale window
	if _, err := c.Exchange(ctx, dnswire.NewQuery(2, "stale.example.", dnswire.TypeA)); err != nil {
		t.Fatal(err)
	}
	drainFlights(c)
	s := c.Stats()
	if s.StaleHits != 1 || s.Refreshes != 1 {
		t.Fatalf("stale refresh not exercised: %+v", s)
	}
	if s.AdmissionRejects != 0 {
		t.Errorf("refresh replacement rejected by admission: %+v", s)
	}
	if c.Len() != 1 {
		t.Errorf("entries = %d, want 1 (refresh replaces in place)", c.Len())
	}
	checkBudgetInvariants(t, c)
}

func TestParseByteSize(t *testing.T) {
	good := []struct {
		in   string
		want int64
	}{
		{"0", 0}, {"123", 123}, {"1k", 1 << 10}, {"8K", 8 << 10},
		{"64m", 64 << 20}, {"2M", 2 << 20}, {"1g", 1 << 30}, {"3G", 3 << 30},
	}
	for _, tt := range good {
		got, err := ParseByteSize(tt.in)
		if err != nil || got != tt.want {
			t.Errorf("ParseByteSize(%q) = %d, %v; want %d", tt.in, got, err, tt.want)
		}
	}
	for _, in := range []string{"", "k", "-1", "-4m", "8x", "1.5m", "8mm"} {
		if v, err := ParseByteSize(in); err == nil {
			t.Errorf("ParseByteSize(%q) = %d, want error", in, v)
		}
	}
}

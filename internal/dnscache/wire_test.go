package dnscache

import (
	"bytes"
	"context"
	"testing"
	"time"

	"dohcost/internal/dnswire"
	"dohcost/internal/telemetry"
)

// fastParse packs q and fast-parses it, failing the test on either step.
func fastParse(t *testing.T, q *dnswire.Message) (dnswire.Query, []byte) {
	t.Helper()
	wire, err := q.Pack()
	if err != nil {
		t.Fatal(err)
	}
	fq, ok := dnswire.ParseQuery(wire)
	if !ok {
		t.Fatalf("query %s not fast-parseable", q.Question1())
	}
	return fq, wire
}

func TestServeWireHitMatchesMessagePath(t *testing.T) {
	now := time.Unix(1000, 0)
	up := &countingUpstream{ttl: 300}
	c := New(up, withClock(func() time.Time { return now }))
	defer c.Close()

	// Prime via the Message path.
	if _, err := c.Exchange(context.Background(), dnswire.NewQuery(1, "wire.example.", dnswire.TypeA)); err != nil {
		t.Fatal(err)
	}

	// 45 seconds later, a different client asks with a different ID.
	now = now.Add(45 * time.Second)
	query := dnswire.NewQuery(0x4242, "Wire.Example.", dnswire.TypeA) // case-insensitive
	fq, _ := fastParse(t, query)
	resp, outcome, ok := c.ServeWire(nil, &fq, make([]byte, 0, 4096), 4096)
	if !ok {
		t.Fatal("wire path missed a primed entry")
	}
	if outcome != telemetry.CacheHit {
		t.Errorf("outcome = %v, want hit", outcome)
	}

	// The bytes must equal what the Message path would serve: same answer,
	// client's ID, TTL decayed by 45s.
	msg, err := c.Exchange(context.Background(), dnswire.NewQuery(0x4242, "wire.example.", dnswire.TypeA))
	if err != nil {
		t.Fatal(err)
	}
	want, err := msg.Pack()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resp, want) {
		t.Errorf("wire path bytes diverge from Message path:\n wire %x\n msg  %x", resp, want)
	}
	var m dnswire.Message
	if err := m.Unpack(resp); err != nil {
		t.Fatal(err)
	}
	if m.ID != 0x4242 {
		t.Errorf("ID = %#x, want 0x4242", m.ID)
	}
	if got := m.Answers[0].TTL; got != 255 {
		t.Errorf("decayed TTL = %d, want 255", got)
	}
	if up.calls.Load() != 1 {
		t.Errorf("upstream called %d times, want 1", up.calls.Load())
	}
	if s := c.Stats(); s.Hits != 2 || s.Misses != 1 {
		t.Errorf("stats = %+v, want 2 hits / 1 miss", s)
	}
}

func TestServeWireDeclines(t *testing.T) {
	now := time.Unix(2000, 0)
	up := &countingUpstream{ttl: 60}
	c := New(up, withClock(func() time.Time { return now }))
	defer c.Close()

	fq, _ := fastParse(t, dnswire.NewQuery(1, "miss.example.", dnswire.TypeA))
	if _, _, ok := c.ServeWire(nil, &fq, nil, 0); ok {
		t.Error("wire path served an uncached name")
	}
	if s := c.Stats(); s.Hits != 0 || s.Misses != 0 {
		t.Errorf("a declined lookup must count nothing, got %+v", s)
	}

	if _, err := c.Exchange(context.Background(), dnswire.NewQuery(1, "miss.example.", dnswire.TypeA)); err != nil {
		t.Fatal(err)
	}

	// Response larger than the limit: decline so the Message path can
	// truncate, and count nothing (Exchange will count the hit).
	if _, _, ok := c.ServeWire(nil, &fq, nil, 20); ok {
		t.Error("wire path served past the size limit")
	}
	if s := c.Stats(); s.Hits != 0 {
		t.Errorf("declined oversized hit counted: %+v", s)
	}

	// Expired entries decline too; the Message path refreshes them.
	now = now.Add(2 * time.Minute)
	if _, _, ok := c.ServeWire(nil, &fq, nil, 0); ok {
		t.Error("wire path served an expired entry")
	}

	// Message-entry mode disables the wire path entirely.
	cm := New(&countingUpstream{ttl: 60}, WithMessageEntries())
	defer cm.Close()
	if _, err := cm.Exchange(context.Background(), dnswire.NewQuery(1, "miss.example.", dnswire.TypeA)); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := cm.ServeWire(nil, &fq, nil, 0); ok {
		t.Error("wire path active in message-entry mode")
	}
}

func TestServeWireNegativeHit(t *testing.T) {
	up := &countingUpstream{rcode: dnswire.RCodeNameError, authority: []dnswire.ResourceRecord{{
		Name: "example.", Class: dnswire.ClassINET, TTL: 600,
		Data: &dnswire.SOA{MName: "ns.example.", RName: "root.example.", Minimum: 300},
	}}}
	c := New(up)
	defer c.Close()
	if _, err := c.Exchange(context.Background(), dnswire.NewQuery(1, "nx.example.", dnswire.TypeA)); err != nil {
		t.Fatal(err)
	}
	fq, _ := fastParse(t, dnswire.NewQuery(2, "nx.example.", dnswire.TypeA))
	resp, outcome, ok := c.ServeWire(nil, &fq, nil, 0)
	if !ok {
		t.Fatal("negative entry not served")
	}
	if outcome != telemetry.CacheNegativeHit {
		t.Errorf("outcome = %v, want negative hit", outcome)
	}
	var m dnswire.Message
	if err := m.Unpack(resp); err != nil {
		t.Fatal(err)
	}
	if m.RCode != dnswire.RCodeNameError || m.ID != 2 {
		t.Errorf("served %s id=%d, want NXDOMAIN id=2", m.RCode, m.ID)
	}
}

func TestServeWireHitAllocFree(t *testing.T) {
	up := &countingUpstream{ttl: 300}
	c := New(up)
	defer c.Close()
	if _, err := c.Exchange(context.Background(), dnswire.NewQuery(1, "hot.example.", dnswire.TypeA)); err != nil {
		t.Fatal(err)
	}
	fq, _ := fastParse(t, dnswire.NewQuery(7, "hot.example.", dnswire.TypeA))
	dst := make([]byte, 0, 4096)
	allocs := testing.AllocsPerRun(200, func() {
		if _, _, ok := c.ServeWire(nil, &fq, dst[:0], 4096); !ok {
			t.Fatal("hit lost")
		}
	})
	if allocs != 0 {
		t.Errorf("wire hit allocates %.1f per query, want 0", allocs)
	}
}

func TestServeWireEntriesAreImmutable(t *testing.T) {
	up := &countingUpstream{ttl: 300}
	c := New(up)
	defer c.Close()
	if _, err := c.Exchange(context.Background(), dnswire.NewQuery(1, "imm.example.", dnswire.TypeA)); err != nil {
		t.Fatal(err)
	}
	fq, _ := fastParse(t, dnswire.NewQuery(2, "imm.example.", dnswire.TypeA))
	first, _, ok := c.ServeWire(nil, &fq, nil, 0)
	if !ok {
		t.Fatal("hit lost")
	}
	snapshot := append([]byte(nil), first...)
	for i := range first {
		first[i] = 0xFF // a hostile caller scribbles on its response
	}
	second, _, ok := c.ServeWire(nil, &fq, nil, 0)
	if !ok {
		t.Fatal("hit lost")
	}
	if !bytes.Equal(second, snapshot) {
		t.Error("stored entry mutated through a served response")
	}
	// Message-path responses from the same entry are fully independent too:
	// mutating one caller's EDNS must not leak into the next response
	// (the shared-EDNS hazard the old deep clone left open).
	r1, err := c.Exchange(context.Background(), dnswire.NewQuery(3, "imm.example.", dnswire.TypeA))
	if err != nil {
		t.Fatal(err)
	}
	if r1.EDNS != nil {
		r1.EDNS.UDPSize = 1
		r1.EDNS.Options = append(r1.EDNS.Options, dnswire.EDNS0Option{Code: 12, Data: make([]byte, 8)})
	}
	r1.Answers[0].Data.(*dnswire.TXT).Strings[0] = "scribbled"
	r2, err := c.Exchange(context.Background(), dnswire.NewQuery(4, "imm.example.", dnswire.TypeA))
	if err != nil {
		t.Fatal(err)
	}
	if r2.EDNS != nil && (r2.EDNS.UDPSize == 1 || len(r2.EDNS.Options) != 0) {
		t.Error("EDNS shared between cache hits")
	}
	if r2.Answers[0].Data.(*dnswire.TXT).Strings[0] != "cached?" {
		t.Error("rdata shared between cache hits")
	}
}

package dnscache

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dohcost/internal/dnswire"
)

// countingUpstream answers with a fixed TTL and counts exchanges.
type countingUpstream struct {
	calls atomic.Int64
	ttl   uint32
	rcode dnswire.RCode
	delay time.Duration
	fail  bool
}

func (u *countingUpstream) Exchange(ctx context.Context, q *dnswire.Message) (*dnswire.Message, error) {
	u.calls.Add(1)
	if u.delay > 0 {
		select {
		case <-time.After(u.delay):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	if u.fail {
		return nil, errors.New("synthetic upstream failure")
	}
	r := q.Reply()
	r.RCode = u.rcode
	if u.rcode == dnswire.RCodeSuccess {
		r.Answers = append(r.Answers, dnswire.ResourceRecord{
			Name: q.Question1().Name, Class: dnswire.ClassINET, TTL: u.ttl,
			Data: &dnswire.TXT{Strings: []string{"cached?"}},
		})
	}
	return r, nil
}

func (u *countingUpstream) Close() error { return nil }

func TestCacheHitAvoidsUpstream(t *testing.T) {
	up := &countingUpstream{ttl: 300}
	c := New(up)
	defer c.Close()
	for i := 0; i < 5; i++ {
		resp, err := c.Exchange(context.Background(), dnswire.NewQuery(uint16(i), "hit.example.", dnswire.TypeA))
		if err != nil {
			t.Fatal(err)
		}
		if resp.ID != uint16(i) {
			t.Errorf("response ID = %d, want %d (restamped)", resp.ID, i)
		}
		if len(resp.Answers) != 1 {
			t.Fatalf("answers = %v", resp.Answers)
		}
	}
	if got := up.calls.Load(); got != 1 {
		t.Errorf("upstream calls = %d, want 1", got)
	}
	s := c.Stats()
	if s.Hits != 4 || s.Misses != 1 {
		t.Errorf("stats = %+v", s)
	}
}

func TestCacheKeyIncludesType(t *testing.T) {
	up := &countingUpstream{ttl: 300}
	c := New(up)
	defer c.Close()
	c.Exchange(context.Background(), dnswire.NewQuery(1, "x.example.", dnswire.TypeA))
	c.Exchange(context.Background(), dnswire.NewQuery(2, "x.example.", dnswire.TypeAAAA))
	c.Exchange(context.Background(), dnswire.NewQuery(3, "X.EXAMPLE.", dnswire.TypeA)) // case-folded hit
	if got := up.calls.Load(); got != 2 {
		t.Errorf("upstream calls = %d, want 2 (A and AAAA)", got)
	}
}

func TestCacheExpiry(t *testing.T) {
	now := time.Now()
	clock := func() time.Time { return now }
	up := &countingUpstream{ttl: 10}
	c := New(up, withClock(func() time.Time { return clock() }))
	defer c.Close()

	c.Exchange(context.Background(), dnswire.NewQuery(1, "exp.example.", dnswire.TypeA))
	now = now.Add(5 * time.Second)
	resp, _ := c.Exchange(context.Background(), dnswire.NewQuery(2, "exp.example.", dnswire.TypeA))
	if up.calls.Load() != 1 {
		t.Fatal("entry expired too early")
	}
	// TTL decays with age.
	if resp.Answers[0].TTL != 5 {
		t.Errorf("decayed TTL = %d, want 5", resp.Answers[0].TTL)
	}
	now = now.Add(6 * time.Second) // past the 10s TTL
	c.Exchange(context.Background(), dnswire.NewQuery(3, "exp.example.", dnswire.TypeA))
	if up.calls.Load() != 2 {
		t.Error("expired entry served")
	}
}

func TestTTLClamping(t *testing.T) {
	now := time.Now()
	up := &countingUpstream{ttl: 1} // 1-second records
	c := New(up,
		withClock(func() time.Time { return now }),
		WithTTLBounds(60*time.Second, time.Hour))
	defer c.Close()
	c.Exchange(context.Background(), dnswire.NewQuery(1, "clamp.example.", dnswire.TypeA))
	now = now.Add(30 * time.Second) // beyond record TTL, inside MinTTL
	c.Exchange(context.Background(), dnswire.NewQuery(2, "clamp.example.", dnswire.TypeA))
	if up.calls.Load() != 1 {
		t.Error("MinTTL clamp not applied")
	}
}

func TestLRUEviction(t *testing.T) {
	up := &countingUpstream{ttl: 300}
	c := New(up, WithMaxEntries(3))
	defer c.Close()
	for i := 0; i < 5; i++ {
		c.Exchange(context.Background(), dnswire.NewQuery(1, dnswire.Name(fmt.Sprintf("n%d.example.", i)), dnswire.TypeA))
	}
	if c.Len() != 3 {
		t.Errorf("entries = %d, want 3", c.Len())
	}
	if s := c.Stats(); s.Evictions != 2 {
		t.Errorf("evictions = %d, want 2", s.Evictions)
	}
	// Oldest (n0, n1) evicted; n4 hot.
	c.Exchange(context.Background(), dnswire.NewQuery(2, "n4.example.", dnswire.TypeA))
	before := up.calls.Load()
	c.Exchange(context.Background(), dnswire.NewQuery(3, "n0.example.", dnswire.TypeA))
	if up.calls.Load() != before+1 {
		t.Error("evicted entry still served")
	}
}

func TestNegativeCaching(t *testing.T) {
	up := &countingUpstream{rcode: dnswire.RCodeNameError}
	c := New(up)
	defer c.Close()
	for i := 0; i < 3; i++ {
		resp, err := c.Exchange(context.Background(), dnswire.NewQuery(uint16(i), "nx.example.", dnswire.TypeA))
		if err != nil {
			t.Fatal(err)
		}
		if resp.RCode != dnswire.RCodeNameError {
			t.Errorf("rcode = %v", resp.RCode)
		}
	}
	if up.calls.Load() != 1 {
		t.Errorf("NXDOMAIN not negatively cached: %d upstream calls", up.calls.Load())
	}
}

func TestErrorsNotCached(t *testing.T) {
	up := &countingUpstream{fail: true}
	c := New(up)
	defer c.Close()
	for i := 0; i < 3; i++ {
		if _, err := c.Exchange(context.Background(), dnswire.NewQuery(uint16(i), "err.example.", dnswire.TypeA)); err == nil {
			t.Fatal("error swallowed")
		}
	}
	if up.calls.Load() != 3 {
		t.Errorf("failures cached: %d upstream calls", up.calls.Load())
	}
}

func TestSingleflightCoalescing(t *testing.T) {
	up := &countingUpstream{ttl: 300, delay: 50 * time.Millisecond}
	c := New(up)
	defer c.Close()
	var wg sync.WaitGroup
	for i := 0; i < 10; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := c.Exchange(context.Background(), dnswire.NewQuery(uint16(i), "co.example.", dnswire.TypeA))
			if err != nil || len(resp.Answers) != 1 {
				t.Errorf("coalesced query %d: %v %v", i, resp, err)
			}
		}(i)
	}
	wg.Wait()
	if got := up.calls.Load(); got != 1 {
		t.Errorf("upstream calls = %d, want 1 (singleflight)", got)
	}
	if s := c.Stats(); s.Coalesced != 9 {
		t.Errorf("coalesced = %d, want 9", s.Coalesced)
	}
}

func TestFlushEmptiesCache(t *testing.T) {
	up := &countingUpstream{ttl: 300}
	c := New(up)
	defer c.Close()
	c.Exchange(context.Background(), dnswire.NewQuery(1, "f.example.", dnswire.TypeA))
	c.Flush()
	if c.Len() != 0 {
		t.Error("flush left entries")
	}
	c.Exchange(context.Background(), dnswire.NewQuery(2, "f.example.", dnswire.TypeA))
	if up.calls.Load() != 2 {
		t.Error("flush did not force a refetch")
	}
}

func TestCachedResponseIsACopy(t *testing.T) {
	up := &countingUpstream{ttl: 300}
	c := New(up)
	defer c.Close()
	r1, _ := c.Exchange(context.Background(), dnswire.NewQuery(1, "cp.example.", dnswire.TypeA))
	r1.Answers[0].TTL = 9999 // mutate the caller's copy
	r2, _ := c.Exchange(context.Background(), dnswire.NewQuery(2, "cp.example.", dnswire.TypeA))
	if r2.Answers[0].TTL == 9999 {
		t.Error("cache shares answer slices with callers")
	}
}

package dnscache

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dohcost/internal/dnswire"
)

// countingUpstream answers with a fixed TTL and counts exchanges.
type countingUpstream struct {
	calls     atomic.Int64
	ttl       uint32
	rcode     dnswire.RCode
	delay     time.Duration
	fail      bool
	noAnswer  bool                     // NODATA: NOERROR with empty answer section
	authority []dnswire.ResourceRecord // appended to every response
}

func (u *countingUpstream) Exchange(ctx context.Context, q *dnswire.Message) (*dnswire.Message, error) {
	u.calls.Add(1)
	if u.delay > 0 {
		select {
		case <-time.After(u.delay):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	if u.fail {
		return nil, errors.New("synthetic upstream failure")
	}
	r := q.Reply()
	r.RCode = u.rcode
	if u.rcode == dnswire.RCodeSuccess && !u.noAnswer {
		r.Answers = append(r.Answers, dnswire.ResourceRecord{
			Name: q.Question1().Name, Class: dnswire.ClassINET, TTL: u.ttl,
			Data: &dnswire.TXT{Strings: []string{"cached?"}},
		})
	}
	r.Authorities = append(r.Authorities, u.authority...)
	return r, nil
}

func (u *countingUpstream) Close() error { return nil }

func TestCacheHitAvoidsUpstream(t *testing.T) {
	up := &countingUpstream{ttl: 300}
	c := New(up)
	defer c.Close()
	for i := 0; i < 5; i++ {
		resp, err := c.Exchange(context.Background(), dnswire.NewQuery(uint16(i), "hit.example.", dnswire.TypeA))
		if err != nil {
			t.Fatal(err)
		}
		if resp.ID != uint16(i) {
			t.Errorf("response ID = %d, want %d (restamped)", resp.ID, i)
		}
		if len(resp.Answers) != 1 {
			t.Fatalf("answers = %v", resp.Answers)
		}
	}
	if got := up.calls.Load(); got != 1 {
		t.Errorf("upstream calls = %d, want 1", got)
	}
	s := c.Stats()
	if s.Hits != 4 || s.Misses != 1 {
		t.Errorf("stats = %+v", s)
	}
}

func TestCacheKeyIncludesType(t *testing.T) {
	up := &countingUpstream{ttl: 300}
	c := New(up)
	defer c.Close()
	c.Exchange(context.Background(), dnswire.NewQuery(1, "x.example.", dnswire.TypeA))
	c.Exchange(context.Background(), dnswire.NewQuery(2, "x.example.", dnswire.TypeAAAA))
	c.Exchange(context.Background(), dnswire.NewQuery(3, "X.EXAMPLE.", dnswire.TypeA)) // case-folded hit
	if got := up.calls.Load(); got != 2 {
		t.Errorf("upstream calls = %d, want 2 (A and AAAA)", got)
	}
}

func TestCacheExpiry(t *testing.T) {
	now := time.Now()
	clock := func() time.Time { return now }
	up := &countingUpstream{ttl: 10}
	c := New(up, withClock(func() time.Time { return clock() }))
	defer c.Close()

	c.Exchange(context.Background(), dnswire.NewQuery(1, "exp.example.", dnswire.TypeA))
	now = now.Add(5 * time.Second)
	resp, _ := c.Exchange(context.Background(), dnswire.NewQuery(2, "exp.example.", dnswire.TypeA))
	if up.calls.Load() != 1 {
		t.Fatal("entry expired too early")
	}
	// TTL decays with age.
	if resp.Answers[0].TTL != 5 {
		t.Errorf("decayed TTL = %d, want 5", resp.Answers[0].TTL)
	}
	now = now.Add(6 * time.Second) // past the 10s TTL
	c.Exchange(context.Background(), dnswire.NewQuery(3, "exp.example.", dnswire.TypeA))
	if up.calls.Load() != 2 {
		t.Error("expired entry served")
	}
}

func TestTTLClamping(t *testing.T) {
	now := time.Now()
	up := &countingUpstream{ttl: 1} // 1-second records
	c := New(up,
		withClock(func() time.Time { return now }),
		WithTTLBounds(60*time.Second, time.Hour))
	defer c.Close()
	c.Exchange(context.Background(), dnswire.NewQuery(1, "clamp.example.", dnswire.TypeA))
	now = now.Add(30 * time.Second) // beyond record TTL, inside MinTTL
	c.Exchange(context.Background(), dnswire.NewQuery(2, "clamp.example.", dnswire.TypeA))
	if up.calls.Load() != 1 {
		t.Error("MinTTL clamp not applied")
	}
}

func TestLRUEviction(t *testing.T) {
	up := &countingUpstream{ttl: 300}
	// One shard: the global bound is exact and eviction order is pure LRU.
	c := New(up, WithMaxEntries(3), WithShards(1))
	defer c.Close()
	for i := 0; i < 5; i++ {
		c.Exchange(context.Background(), dnswire.NewQuery(1, dnswire.Name(fmt.Sprintf("n%d.example.", i)), dnswire.TypeA))
	}
	if c.Len() != 3 {
		t.Errorf("entries = %d, want 3", c.Len())
	}
	if s := c.Stats(); s.Evictions != 2 {
		t.Errorf("evictions = %d, want 2", s.Evictions)
	}
	// Oldest (n0, n1) evicted; n4 hot.
	c.Exchange(context.Background(), dnswire.NewQuery(2, "n4.example.", dnswire.TypeA))
	before := up.calls.Load()
	c.Exchange(context.Background(), dnswire.NewQuery(3, "n0.example.", dnswire.TypeA))
	if up.calls.Load() != before+1 {
		t.Error("evicted entry still served")
	}
}

func TestNegativeCaching(t *testing.T) {
	up := &countingUpstream{rcode: dnswire.RCodeNameError}
	c := New(up)
	defer c.Close()
	for i := 0; i < 3; i++ {
		resp, err := c.Exchange(context.Background(), dnswire.NewQuery(uint16(i), "nx.example.", dnswire.TypeA))
		if err != nil {
			t.Fatal(err)
		}
		if resp.RCode != dnswire.RCodeNameError {
			t.Errorf("rcode = %v", resp.RCode)
		}
	}
	if up.calls.Load() != 1 {
		t.Errorf("NXDOMAIN not negatively cached: %d upstream calls", up.calls.Load())
	}
}

func TestErrorsNotCached(t *testing.T) {
	up := &countingUpstream{fail: true}
	c := New(up)
	defer c.Close()
	for i := 0; i < 3; i++ {
		if _, err := c.Exchange(context.Background(), dnswire.NewQuery(uint16(i), "err.example.", dnswire.TypeA)); err == nil {
			t.Fatal("error swallowed")
		}
	}
	if up.calls.Load() != 3 {
		t.Errorf("failures cached: %d upstream calls", up.calls.Load())
	}
}

func TestSingleflightCoalescing(t *testing.T) {
	up := &countingUpstream{ttl: 300, delay: 50 * time.Millisecond}
	c := New(up)
	defer c.Close()
	var wg sync.WaitGroup
	for i := 0; i < 10; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := c.Exchange(context.Background(), dnswire.NewQuery(uint16(i), "co.example.", dnswire.TypeA))
			if err != nil || len(resp.Answers) != 1 {
				t.Errorf("coalesced query %d: %v %v", i, resp, err)
			}
		}(i)
	}
	wg.Wait()
	if got := up.calls.Load(); got != 1 {
		t.Errorf("upstream calls = %d, want 1 (singleflight)", got)
	}
	if s := c.Stats(); s.Coalesced != 9 {
		t.Errorf("coalesced = %d, want 9", s.Coalesced)
	}
}

func TestFlushEmptiesCache(t *testing.T) {
	up := &countingUpstream{ttl: 300}
	c := New(up)
	defer c.Close()
	c.Exchange(context.Background(), dnswire.NewQuery(1, "f.example.", dnswire.TypeA))
	c.Flush()
	if c.Len() != 0 {
		t.Error("flush left entries")
	}
	c.Exchange(context.Background(), dnswire.NewQuery(2, "f.example.", dnswire.TypeA))
	if up.calls.Load() != 2 {
		t.Error("flush did not force a refetch")
	}
}

// TestFlightSurvivesLeaderCancellation pins the singleflight contract under
// per-connection contexts: the client that starts a flight disconnecting
// mid-exchange must not fail the coalesced waiters on healthy connections.
func TestFlightSurvivesLeaderCancellation(t *testing.T) {
	up := &countingUpstream{ttl: 300, delay: 80 * time.Millisecond}
	c := New(up)
	defer c.Close()

	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	leaderDone := make(chan error, 1)
	go func() {
		_, err := c.Exchange(leaderCtx, dnswire.NewQuery(1, "flight.example.", dnswire.TypeA))
		leaderDone <- err
	}()
	time.Sleep(20 * time.Millisecond) // let the leader start the flight

	followerDone := make(chan error, 1)
	go func() {
		resp, err := c.Exchange(context.Background(), dnswire.NewQuery(2, "flight.example.", dnswire.TypeA))
		if err == nil && len(resp.Answers) != 1 {
			err = fmt.Errorf("follower answers = %v", resp.Answers)
		}
		followerDone <- err
	}()
	time.Sleep(20 * time.Millisecond) // let the follower coalesce
	cancelLeader()

	if err := <-followerDone; err != nil {
		t.Errorf("follower poisoned by leader's disconnect: %v", err)
	}
	<-leaderDone
	if got := up.calls.Load(); got != 1 {
		t.Errorf("upstream calls = %d, want 1", got)
	}
}

// TestUpstreamKeepsCallerDeadline: detaching the flight from the leader's
// cancellation must not detach it from the leader's deadline.
func TestUpstreamKeepsCallerDeadline(t *testing.T) {
	up := &countingUpstream{ttl: 300, delay: time.Minute}
	c := New(up)
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	if _, err := c.Exchange(ctx, dnswire.NewQuery(1, "dl.example.", dnswire.TypeA)); err == nil {
		t.Fatal("minute-long upstream exchange beat a 30ms deadline")
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("deadline not propagated to the upstream exchange")
	}
}

func TestSmallBoundShrinksShardCount(t *testing.T) {
	up := &countingUpstream{ttl: 300}
	c := New(up, WithMaxEntries(4)) // default 16 shards would overshoot to 16
	defer c.Close()
	if c.Shards() != 4 {
		t.Errorf("shards = %d, want 4 (shrunk to honour the bound)", c.Shards())
	}
	for i := 0; i < 20; i++ {
		c.Exchange(context.Background(), dnswire.NewQuery(1, dnswire.Name(fmt.Sprintf("b%d.example.", i)), dnswire.TypeA))
	}
	if c.Len() > 4 {
		t.Errorf("entries = %d, exceeds WithMaxEntries(4)", c.Len())
	}
}

func TestShardCountRoundsToPowerOfTwo(t *testing.T) {
	up := &countingUpstream{ttl: 300}
	for _, tt := range []struct{ ask, want int }{{1, 1}, {2, 2}, {3, 4}, {16, 16}, {17, 32}} {
		c := New(up, WithShards(tt.ask))
		if c.Shards() != tt.want {
			t.Errorf("WithShards(%d) → %d shards, want %d", tt.ask, c.Shards(), tt.want)
		}
	}
}

// TestShardedConcurrentMixedLoad hammers the default sharded cache with a
// mix of hot names (hits), unique names (misses) and simultaneous identical
// queries (coalescing) and checks the aggregated accounting; run under
// -race it also proves the per-shard locking sound.
func TestShardedConcurrentMixedLoad(t *testing.T) {
	up := &countingUpstream{ttl: 300, delay: time.Millisecond}
	c := New(up)
	defer c.Close()

	const workers = 16
	const perWorker = 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				var name string
				switch i % 3 {
				case 0: // hot set shared by all workers: hits + coalescing
					name = fmt.Sprintf("hot%d.example.", i%5)
				case 1: // per-worker names: misses then hits
					name = fmt.Sprintf("w%d-n%d.example.", w, i%10)
				default: // unique names: pure misses
					name = fmt.Sprintf("uniq-w%d-i%d.example.", w, i)
				}
				resp, err := c.Exchange(context.Background(), dnswire.NewQuery(uint16(i), dnswire.Name(name), dnswire.TypeA))
				if err != nil {
					t.Errorf("worker %d query %d: %v", w, i, err)
					return
				}
				if len(resp.Answers) != 1 {
					t.Errorf("worker %d query %d: answers = %v", w, i, resp.Answers)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	s := c.Stats()
	total := s.Hits + s.Misses + s.Coalesced
	if total != workers*perWorker {
		t.Errorf("accounted %d queries, want %d (stats %+v)", total, workers*perWorker, s)
	}
	if got := up.calls.Load(); got != s.Misses {
		t.Errorf("upstream calls = %d, want %d (one per miss)", got, s.Misses)
	}
	if s.Hits == 0 || s.Misses == 0 {
		t.Errorf("load not mixed: %+v", s)
	}
}

func TestNegativeTTLFromSOAMinimum(t *testing.T) {
	now := time.Now()
	soa := dnswire.ResourceRecord{
		Name: "example.", Class: dnswire.ClassINET, TTL: 3600,
		Data: &dnswire.SOA{MName: "ns.example.", RName: "admin.example.", Minimum: 60},
	}
	up := &countingUpstream{rcode: dnswire.RCodeNameError, authority: []dnswire.ResourceRecord{soa}}
	c := New(up,
		withClock(func() time.Time { return now }),
		WithNegativeTTL(10*time.Minute)) // lift the cap: the SOA decides
	defer c.Close()

	c.Exchange(context.Background(), dnswire.NewQuery(1, "nx.example.", dnswire.TypeA))
	// RFC 2308: TTL = min(SOA RR TTL, SOA MINIMUM) = 60s, not the RR's 3600.
	now = now.Add(59 * time.Second)
	c.Exchange(context.Background(), dnswire.NewQuery(2, "nx.example.", dnswire.TypeA))
	if up.calls.Load() != 1 {
		t.Fatalf("negative entry expired before SOA minimum: %d upstream calls", up.calls.Load())
	}
	now = now.Add(2 * time.Second) // past 60s
	c.Exchange(context.Background(), dnswire.NewQuery(3, "nx.example.", dnswire.TypeA))
	if up.calls.Load() != 2 {
		t.Errorf("negative entry outlived SOA minimum: %d upstream calls", up.calls.Load())
	}
}

func TestNegativeTTLNodataAndCap(t *testing.T) {
	now := time.Now()
	soa := dnswire.ResourceRecord{
		Name: "example.", Class: dnswire.ClassINET, TTL: 86400,
		Data: &dnswire.SOA{MName: "ns.example.", RName: "admin.example.", Minimum: 86400},
	}
	// NODATA (NOERROR, no answers) with a huge SOA: the configured negative
	// ceiling caps it.
	up := &countingUpstream{noAnswer: true, authority: []dnswire.ResourceRecord{soa}}
	c := New(up,
		withClock(func() time.Time { return now }),
		WithNegativeTTL(30*time.Second))
	defer c.Close()

	c.Exchange(context.Background(), dnswire.NewQuery(1, "nodata.example.", dnswire.TypeTXT))
	now = now.Add(29 * time.Second)
	c.Exchange(context.Background(), dnswire.NewQuery(2, "nodata.example.", dnswire.TypeTXT))
	if up.calls.Load() != 1 {
		t.Fatal("NODATA not cached")
	}
	now = now.Add(2 * time.Second)
	c.Exchange(context.Background(), dnswire.NewQuery(3, "nodata.example.", dnswire.TypeTXT))
	if up.calls.Load() != 2 {
		t.Error("NODATA outlived the negative-TTL cap")
	}
}

// TestEvictionAccountingAcrossShards fills a bounded sharded cache far past
// capacity and checks the books balance: every miss either lives in some
// shard or was evicted from one.
func TestEvictionAccountingAcrossShards(t *testing.T) {
	up := &countingUpstream{ttl: 300}
	c := New(up, WithMaxEntries(64), WithShards(16))
	defer c.Close()
	const inserts = 500
	for i := 0; i < inserts; i++ {
		c.Exchange(context.Background(), dnswire.NewQuery(1, dnswire.Name(fmt.Sprintf("evict%d.example.", i)), dnswire.TypeA))
	}
	s := c.Stats()
	if s.Misses != inserts {
		t.Fatalf("misses = %d, want %d", s.Misses, inserts)
	}
	if c.Len() > 64 {
		t.Errorf("entries = %d, exceeds global bound 64", c.Len())
	}
	if s.Evictions == 0 {
		t.Error("no evictions recorded despite 500 inserts into 64 slots")
	}
	if int64(c.Len())+s.Evictions != s.Misses {
		t.Errorf("accounting broken: live %d + evicted %d != inserted %d", c.Len(), s.Evictions, s.Misses)
	}
}

func TestCachedResponseIsACopy(t *testing.T) {
	up := &countingUpstream{ttl: 300}
	c := New(up)
	defer c.Close()
	r1, _ := c.Exchange(context.Background(), dnswire.NewQuery(1, "cp.example.", dnswire.TypeA))
	r1.Answers[0].TTL = 9999 // mutate the caller's copy
	r2, _ := c.Exchange(context.Background(), dnswire.NewQuery(2, "cp.example.", dnswire.TypeA))
	if r2.Answers[0].TTL == 9999 {
		t.Error("cache shares answer slices with callers")
	}
}

package h2

import (
	"errors"
	"fmt"
	"io"
	"net"
	"strconv"
	"sync"

	"dohcost/internal/hpack"
)

// Handler produces the response for one request. Handlers run concurrently,
// one goroutine per stream — a slow handler delays only its own stream,
// which is precisely the property Figure 2 measures.
type Handler interface {
	ServeH2(req *Request) *Response
}

// HandlerFunc adapts a function to Handler.
type HandlerFunc func(req *Request) *Response

// ServeH2 implements Handler.
func (f HandlerFunc) ServeH2(req *Request) *Response { return f(req) }

// Server serves HTTP/2 connections.
type Server struct {
	Handler Handler
	// MaxFrameSize advertised to peers; zero means the 16 KB default.
	MaxFrameSize uint32
}

// serverStream accumulates one inbound request.
type serverStream struct {
	id        uint32
	req       Request
	gotEnd    bool
	headersOK bool

	sendWindow int64
}

// serverConn is the per-connection state.
type serverConn struct {
	srv  *Server
	conn net.Conn
	fr   *Framer

	encMu sync.Mutex
	henc  *hpack.Encoder
	hdec  *hpack.Decoder

	mu             sync.Mutex
	cond           *sync.Cond
	streams        map[uint32]*serverStream
	connSendWindow int64
	initialWindow  int64
	peerMaxFrame   uint32
	closed         bool

	contStream uint32
	contEnd    bool
	contBuf    []byte
	inContinue bool

	wg sync.WaitGroup
}

// ServeConn runs the HTTP/2 protocol on conn until it closes, dispatching
// requests to the server's handler. It returns nil on clean shutdown
// (client GOAWAY or EOF).
func (s *Server) ServeConn(conn net.Conn) error {
	sc := &serverConn{
		srv:            s,
		conn:           conn,
		fr:             NewFramer(conn),
		henc:           hpack.NewEncoder(),
		hdec:           hpack.NewDecoder(),
		streams:        make(map[uint32]*serverStream),
		connSendWindow: defaultInitialWindowSize,
		initialWindow:  defaultInitialWindowSize,
		peerMaxFrame:   defaultMaxFrameSize,
	}
	sc.cond = sync.NewCond(&sc.mu)
	defer func() {
		sc.mu.Lock()
		sc.closed = true
		sc.cond.Broadcast()
		sc.mu.Unlock()
		conn.Close()
		sc.wg.Wait()
	}()

	if err := sc.fr.ReadPreface(); err != nil {
		return fmt.Errorf("h2: reading preface: %w", err)
	}
	maxFrame := s.MaxFrameSize
	if maxFrame == 0 {
		maxFrame = defaultMaxFrameSize
	}
	err := sc.fr.WriteFrame(FrameSettings, 0, 0, encodeSettings([]Setting{
		{SettingMaxConcurrentStreams, 1000},
		{SettingMaxFrameSize, maxFrame},
		{SettingInitialWindowSize, defaultInitialWindowSize},
	}))
	if err != nil {
		return fmt.Errorf("h2: writing settings: %w", err)
	}

	for {
		fr, err := sc.fr.ReadFrame()
		if err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, net.ErrClosed) || errors.Is(err, io.ErrUnexpectedEOF) {
				return nil
			}
			return err
		}
		if err := sc.handleFrame(fr); err != nil {
			var goaway ConnError
			if errors.As(err, &goaway) && goaway.Code == ErrCodeNo {
				return nil // clean client GOAWAY
			}
			sc.fr.WriteFrame(FrameGoAway, 0, 0, make([]byte, 8))
			return err
		}
	}
}

// Stats returns nil until ServeConn has started; exposed mainly for tests.
func (sc *serverConn) Stats() *FrameStats { return &sc.fr.Stats }

func (sc *serverConn) handleFrame(fr Frame) error {
	if sc.inContinue && fr.Type != FrameContinuation {
		return ConnError{ErrCodeProtocol, "expected CONTINUATION"}
	}
	switch fr.Type {
	case FrameSettings:
		return sc.handleSettings(fr)
	case FramePing:
		if fr.Flags&FlagAck == 0 {
			payload := append([]byte(nil), fr.Payload...)
			return sc.fr.WriteFrame(FramePing, FlagAck, 0, payload)
		}
	case FrameWindowUpdate:
		if len(fr.Payload) != 4 {
			return ConnError{ErrCodeFrameSize, "bad WINDOW_UPDATE"}
		}
		inc := int64(uint32(fr.Payload[0])<<24|uint32(fr.Payload[1])<<16|uint32(fr.Payload[2])<<8|uint32(fr.Payload[3])) & maxWindow
		sc.mu.Lock()
		if fr.StreamID == 0 {
			sc.connSendWindow += inc
		} else if st := sc.streams[fr.StreamID]; st != nil {
			st.sendWindow += inc
		}
		sc.cond.Broadcast()
		sc.mu.Unlock()
	case FrameHeaders:
		if fr.StreamID == 0 || fr.StreamID%2 == 0 {
			return ConnError{ErrCodeProtocol, "bad stream id for HEADERS"}
		}
		block, err := stripPadding(fr)
		if err != nil {
			return err
		}
		sc.contStream = fr.StreamID
		sc.contEnd = fr.Flags&FlagEndStream != 0
		sc.contBuf = append(sc.contBuf[:0], block...)
		if fr.Flags&FlagEndHeaders != 0 {
			return sc.finishHeaders()
		}
		sc.inContinue = true
	case FrameContinuation:
		if !sc.inContinue || fr.StreamID != sc.contStream {
			return ConnError{ErrCodeProtocol, "unexpected CONTINUATION"}
		}
		sc.contBuf = append(sc.contBuf, fr.Payload...)
		if fr.Flags&FlagEndHeaders != 0 {
			sc.inContinue = false
			return sc.finishHeaders()
		}
	case FrameData:
		return sc.handleData(fr)
	case FrameRSTStream:
		sc.mu.Lock()
		delete(sc.streams, fr.StreamID)
		sc.mu.Unlock()
	case FrameGoAway:
		return ConnError{ErrCodeNo, "client GOAWAY"}
	case FramePriority, FramePushPromise:
		// PRIORITY is advisory; clients cannot push.
	}
	return nil
}

func (sc *serverConn) handleSettings(fr Frame) error {
	if fr.Flags&FlagAck != 0 {
		return nil
	}
	settings, err := decodeSettings(fr.Payload)
	if err != nil {
		return err
	}
	for _, s := range settings {
		switch s.ID {
		case SettingInitialWindowSize:
			sc.mu.Lock()
			delta := int64(s.Value) - sc.initialWindow
			sc.initialWindow = int64(s.Value)
			for _, st := range sc.streams {
				st.sendWindow += delta
			}
			sc.cond.Broadcast()
			sc.mu.Unlock()
		case SettingMaxFrameSize:
			sc.mu.Lock()
			sc.peerMaxFrame = s.Value
			sc.mu.Unlock()
		case SettingHeaderTableSize:
			sc.encMu.Lock()
			sc.henc.SetMaxDynamicTableSize(int(s.Value))
			sc.encMu.Unlock()
		}
	}
	return sc.fr.WriteFrame(FrameSettings, FlagAck, 0, nil)
}

func (sc *serverConn) finishHeaders() error {
	fields, err := sc.hdec.Decode(sc.contBuf)
	if err != nil {
		return ConnError{ErrCodeCompression, err.Error()}
	}
	st := &serverStream{id: sc.contStream}
	sc.mu.Lock()
	st.sendWindow = sc.initialWindow
	sc.streams[st.id] = st
	sc.mu.Unlock()

	for _, f := range fields {
		switch f.Name {
		case ":method":
			st.req.Method = f.Value
		case ":scheme":
			st.req.Scheme = f.Value
		case ":authority":
			st.req.Authority = f.Value
		case ":path":
			st.req.Path = f.Value
		default:
			st.req.Header = append(st.req.Header, f)
		}
	}
	st.headersOK = st.req.Method != "" && st.req.Path != ""
	if !st.headersOK {
		return sc.resetStream(st.id, ErrCodeProtocol)
	}
	if sc.contEnd {
		sc.dispatch(st)
	}
	return nil
}

func (sc *serverConn) handleData(fr Frame) error {
	data, err := stripPadding(fr)
	if err != nil {
		return err
	}
	sc.mu.Lock()
	st := sc.streams[fr.StreamID]
	sc.mu.Unlock()
	if st == nil {
		return sc.sendWindowUpdate(0, len(fr.Payload))
	}
	st.req.Body = append(st.req.Body, data...)
	if err := sc.sendWindowUpdate(0, len(fr.Payload)); err != nil {
		return err
	}
	if fr.Flags&FlagEndStream != 0 {
		sc.dispatch(st)
		return nil
	}
	return sc.sendWindowUpdate(fr.StreamID, len(fr.Payload))
}

func (sc *serverConn) sendWindowUpdate(streamID uint32, n int) error {
	if n <= 0 {
		return nil
	}
	payload := []byte{byte(n >> 24), byte(n >> 16), byte(n >> 8), byte(n)}
	return sc.fr.WriteFrame(FrameWindowUpdate, 0, streamID, payload)
}

// dispatch runs the handler on its own goroutine and writes the response
// when it returns. Streams answer in completion order, not arrival order.
func (sc *serverConn) dispatch(st *serverStream) {
	st.gotEnd = true
	sc.wg.Add(1)
	go func() {
		defer sc.wg.Done()
		resp := sc.srv.Handler.ServeH2(&st.req)
		if resp == nil {
			resp = &Response{Status: 500}
		}
		if err := sc.writeResponse(st, resp); err != nil {
			sc.conn.Close() // connection is broken; read loop will exit
		}
	}()
}

func (sc *serverConn) writeResponse(st *serverStream, resp *Response) error {
	fields := make([]hpack.HeaderField, 0, 1+len(resp.Header))
	fields = append(fields, hpack.HeaderField{Name: ":status", Value: strconv.Itoa(resp.Status)})
	fields = append(fields, resp.Header...)

	var flags uint8
	if len(resp.Body) == 0 {
		flags |= FlagEndStream
	}
	sc.mu.Lock()
	maxFrame := sc.peerMaxFrame
	sc.mu.Unlock()
	sc.encMu.Lock()
	block := sc.henc.AppendEncode(nil, fields)
	err := writeHeaderBlock(sc.fr, st.id, flags, block, maxFrame)
	sc.encMu.Unlock()
	if err != nil {
		return err
	}
	body := resp.Body
	for len(body) > 0 {
		n, err := sc.reserveWindow(st, len(body))
		if err != nil {
			return err
		}
		chunk := body[:n]
		body = body[n:]
		var f uint8
		if len(body) == 0 {
			f = FlagEndStream
		}
		if err := sc.fr.WriteFrame(FrameData, f, st.id, chunk); err != nil {
			return err
		}
	}
	sc.mu.Lock()
	delete(sc.streams, st.id)
	sc.mu.Unlock()
	return nil
}

func (sc *serverConn) reserveWindow(st *serverStream, want int) (int, error) {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	for {
		if sc.closed {
			return 0, ErrConnClosed
		}
		n := int64(want)
		if n > sc.connSendWindow {
			n = sc.connSendWindow
		}
		if n > st.sendWindow {
			n = st.sendWindow
		}
		if n > int64(sc.peerMaxFrame) {
			n = int64(sc.peerMaxFrame)
		}
		if n > 0 {
			sc.connSendWindow -= n
			st.sendWindow -= n
			return int(n), nil
		}
		sc.cond.Wait()
	}
}

func (sc *serverConn) resetStream(id uint32, code ErrCode) error {
	sc.mu.Lock()
	delete(sc.streams, id)
	sc.mu.Unlock()
	payload := []byte{byte(uint32(code) >> 24), byte(uint32(code) >> 16), byte(uint32(code) >> 8), byte(code)}
	return sc.fr.WriteFrame(FrameRSTStream, 0, id, payload)
}

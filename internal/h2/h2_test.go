package h2

import (
	"bytes"
	"context"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"dohcost/internal/hpack"
	"dohcost/internal/netsim"
)

// startServer serves h on a netsim listener and returns a dialer.
func startServer(t *testing.T, h Handler) func() (net.Conn, error) {
	t.Helper()
	n := netsim.New(1)
	l, err := n.Listen("h2.test:443")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	srv := &Server{Handler: h}
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			go srv.ServeConn(c)
		}
	}()
	return func() (net.Conn, error) { return n.Dial("client", "h2.test:443") }
}

func echoHandler(req *Request) *Response {
	return &Response{
		Status: 200,
		Header: []hpack.HeaderField{{Name: "content-type", Value: "application/dns-message"}},
		Body:   append([]byte("echo:"), req.Body...),
	}
}

func dialClient(t *testing.T, dial func() (net.Conn, error)) *ClientConn {
	t.Helper()
	raw, err := dial()
	if err != nil {
		t.Fatal(err)
	}
	cc, err := NewClientConn(raw)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cc.Close() })
	return cc
}

func TestRoundTripPOST(t *testing.T) {
	dial := startServer(t, HandlerFunc(echoHandler))
	cc := dialClient(t, dial)
	resp, err := cc.RoundTrip(context.Background(), &Request{
		Method: "POST", Scheme: "https", Authority: "h2.test", Path: "/dns-query",
		Header: []hpack.HeaderField{{Name: "content-type", Value: "application/dns-message"}},
		Body:   []byte("payload"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != 200 {
		t.Errorf("status = %d", resp.Status)
	}
	if string(resp.Body) != "echo:payload" {
		t.Errorf("body = %q", resp.Body)
	}
	if resp.HeaderValue("content-type") != "application/dns-message" {
		t.Errorf("content-type = %q", resp.HeaderValue("content-type"))
	}
}

func TestRoundTripGETNoBody(t *testing.T) {
	dial := startServer(t, HandlerFunc(func(req *Request) *Response {
		if req.Method != "GET" || req.Path != "/dns-query?dns=abc" {
			return &Response{Status: 400}
		}
		return &Response{Status: 200, Body: []byte("ok")}
	}))
	cc := dialClient(t, dial)
	resp, err := cc.RoundTrip(context.Background(), &Request{
		Method: "GET", Scheme: "https", Authority: "h2.test", Path: "/dns-query?dns=abc",
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != 200 || string(resp.Body) != "ok" {
		t.Errorf("resp = %d %q", resp.Status, resp.Body)
	}
}

func TestSequentialRequestsReuseConnection(t *testing.T) {
	dial := startServer(t, HandlerFunc(echoHandler))
	cc := dialClient(t, dial)
	for i := 0; i < 20; i++ {
		body := fmt.Sprintf("q%d", i)
		resp, err := cc.RoundTrip(context.Background(), &Request{
			Method: "POST", Scheme: "https", Authority: "h2.test", Path: "/",
			Body: []byte(body),
		})
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		if string(resp.Body) != "echo:"+body {
			t.Fatalf("request %d body = %q", i, resp.Body)
		}
	}
}

// TestNoHeadOfLineBlocking is the protocol property behind Figure 2: a slow
// stream must not delay a fast one issued afterwards.
func TestNoHeadOfLineBlocking(t *testing.T) {
	release := make(chan struct{})
	dial := startServer(t, HandlerFunc(func(req *Request) *Response {
		if req.Path == "/slow" {
			<-release
		}
		return &Response{Status: 200, Body: []byte(req.Path)}
	}))
	cc := dialClient(t, dial)

	slowDone := make(chan error, 1)
	go func() {
		_, err := cc.RoundTrip(context.Background(), &Request{
			Method: "GET", Scheme: "https", Authority: "h2.test", Path: "/slow",
		})
		slowDone <- err
	}()
	time.Sleep(10 * time.Millisecond) // let the slow request start first

	start := time.Now()
	resp, err := cc.RoundTrip(context.Background(), &Request{
		Method: "GET", Scheme: "https", Authority: "h2.test", Path: "/fast",
	})
	fastTime := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	if string(resp.Body) != "/fast" {
		t.Errorf("fast body = %q", resp.Body)
	}
	if fastTime > 500*time.Millisecond {
		t.Errorf("fast request took %v behind a blocked stream", fastTime)
	}
	close(release)
	if err := <-slowDone; err != nil {
		t.Errorf("slow request: %v", err)
	}
}

func TestConcurrentRoundTrips(t *testing.T) {
	dial := startServer(t, HandlerFunc(echoHandler))
	cc := dialClient(t, dial)
	var wg sync.WaitGroup
	errs := make(chan error, 50)
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body := fmt.Sprintf("q%03d", i)
			resp, err := cc.RoundTrip(context.Background(), &Request{
				Method: "POST", Scheme: "https", Authority: "h2.test", Path: "/",
				Body: []byte(body),
			})
			if err != nil {
				errs <- err
				return
			}
			if string(resp.Body) != "echo:"+body {
				errs <- fmt.Errorf("body mismatch: %q", resp.Body)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestLargeBodyFlowControl(t *testing.T) {
	// 300 KB responses exceed both the 64 KB connection window and the
	// 16 KB frame size, forcing WINDOW_UPDATE exchanges.
	big := bytes.Repeat([]byte("x"), 300<<10)
	dial := startServer(t, HandlerFunc(func(req *Request) *Response {
		return &Response{Status: 200, Body: big}
	}))
	cc := dialClient(t, dial)
	resp, err := cc.RoundTrip(context.Background(), &Request{
		Method: "GET", Scheme: "https", Authority: "h2.test", Path: "/big",
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resp.Body, big) {
		t.Errorf("large body corrupted: %d bytes", len(resp.Body))
	}
}

func TestLargeRequestBodyUpload(t *testing.T) {
	big := bytes.Repeat([]byte("u"), 200<<10)
	dial := startServer(t, HandlerFunc(func(req *Request) *Response {
		return &Response{Status: 200, Body: []byte(fmt.Sprintf("%d", len(req.Body)))}
	}))
	cc := dialClient(t, dial)
	resp, err := cc.RoundTrip(context.Background(), &Request{
		Method: "POST", Scheme: "https", Authority: "h2.test", Path: "/up", Body: big,
	})
	if err != nil {
		t.Fatal(err)
	}
	if string(resp.Body) != fmt.Sprintf("%d", len(big)) {
		t.Errorf("server saw %s bytes, want %d", resp.Body, len(big))
	}
}

func TestLargeHeadersUseContinuation(t *testing.T) {
	// A single ~40 KB header exceeds the 16 KB frame limit on the response
	// path, so the server must split HEADERS + CONTINUATION. Our server
	// writes one HEADERS frame; large response headers only occur in the
	// request direction for DoH GET, so test request-side with a long path.
	longValue := strings.Repeat("v", 2000)
	dial := startServer(t, HandlerFunc(func(req *Request) *Response {
		for _, f := range req.Header {
			if f.Name == "x-long" && f.Value == longValue {
				return &Response{Status: 200}
			}
		}
		return &Response{Status: 400}
	}))
	cc := dialClient(t, dial)
	resp, err := cc.RoundTrip(context.Background(), &Request{
		Method: "GET", Scheme: "https", Authority: "h2.test", Path: "/",
		Header: []hpack.HeaderField{{Name: "x-long", Value: longValue}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != 200 {
		t.Errorf("status = %d", resp.Status)
	}
}

func TestContextCancellation(t *testing.T) {
	dial := startServer(t, HandlerFunc(func(req *Request) *Response {
		time.Sleep(5 * time.Second)
		return &Response{Status: 200}
	}))
	cc := dialClient(t, dial)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := cc.RoundTrip(ctx, &Request{
		Method: "GET", Scheme: "https", Authority: "h2.test", Path: "/",
	})
	if err == nil {
		t.Fatal("cancelled request succeeded")
	}
	if time.Since(start) > time.Second {
		t.Error("cancellation not prompt")
	}
	// The connection survives for other requests? The stream was RST, so a
	// new request should still work once the handler finishes or in
	// parallel.
	ctx2, cancel2 := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel2()
	_ = ctx2
}

func TestCloseFailsPendingRequests(t *testing.T) {
	dial := startServer(t, HandlerFunc(func(req *Request) *Response {
		time.Sleep(10 * time.Second)
		return &Response{Status: 200}
	}))
	raw, err := dial()
	if err != nil {
		t.Fatal(err)
	}
	cc, err := NewClientConn(raw)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := cc.RoundTrip(context.Background(), &Request{
			Method: "GET", Scheme: "https", Authority: "h2.test", Path: "/",
		})
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	cc.Close()
	select {
	case err := <-done:
		if err == nil {
			t.Error("pending request succeeded after Close")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("pending request not failed by Close")
	}
	// New requests are refused.
	if _, err := cc.RoundTrip(context.Background(), &Request{Method: "GET", Scheme: "https", Authority: "x", Path: "/"}); err == nil {
		t.Error("request on closed connection succeeded")
	}
}

func TestFrameStatsAccounting(t *testing.T) {
	dial := startServer(t, HandlerFunc(echoHandler))
	cc := dialClient(t, dial)
	body := []byte("0123456789")
	if _, err := cc.RoundTrip(context.Background(), &Request{
		Method: "POST", Scheme: "https", Authority: "h2.test", Path: "/dns-query", Body: body,
	}); err != nil {
		t.Fatal(err)
	}
	layer := cc.Stats().Layer()
	// Body: 10 out + 15 back ("echo:" + 10).
	if layer.BodyBytes != 25 {
		t.Errorf("body bytes = %d, want 25", layer.BodyBytes)
	}
	if layer.HdrBytes <= 0 {
		t.Error("no header bytes accounted")
	}
	// Mgmt covers preface (24) + settings both ways + acks + window updates
	// + all frame headers.
	if layer.MgmtBytes < int64(len(ClientPreface)) {
		t.Errorf("mgmt bytes = %d", layer.MgmtBytes)
	}
	if layer.TotalBytes != layer.BodyBytes+layer.HdrBytes+layer.MgmtBytes {
		t.Error("layer total inconsistent")
	}
}

func TestDifferentialHeadersAcrossRequests(t *testing.T) {
	dial := startServer(t, HandlerFunc(echoHandler))
	cc := dialClient(t, dial)
	req := func() *Request {
		return &Request{
			Method: "POST", Scheme: "https", Authority: "h2.test", Path: "/dns-query",
			Header: []hpack.HeaderField{
				{Name: "content-type", Value: "application/dns-message"},
				{Name: "accept", Value: "application/dns-message"},
			},
			Body: []byte("q"),
		}
	}
	if _, err := cc.RoundTrip(context.Background(), req()); err != nil {
		t.Fatal(err)
	}
	afterFirst := cc.Stats().Layer().HdrBytes
	if _, err := cc.RoundTrip(context.Background(), req()); err != nil {
		t.Fatal(err)
	}
	afterSecond := cc.Stats().Layer().HdrBytes
	first := afterFirst
	second := afterSecond - afterFirst
	if second >= first {
		t.Errorf("second request headers (%dB) not smaller than first (%dB): differential compression broken", second, first)
	}
}

func TestPingPong(t *testing.T) {
	dial := startServer(t, HandlerFunc(echoHandler))
	cc := dialClient(t, dial)
	// Drive a PING through the client's framer; server must ACK and the
	// client read loop must absorb it without disturbing traffic.
	if err := cc.fr.WriteFrame(FramePing, 0, 0, []byte("12345678")); err != nil {
		t.Fatal(err)
	}
	resp, err := cc.RoundTrip(context.Background(), &Request{
		Method: "POST", Scheme: "https", Authority: "h2.test", Path: "/", Body: []byte("x"),
	})
	if err != nil || resp.Status != 200 {
		t.Fatalf("traffic after ping: %v %v", resp, err)
	}
}

func TestFrameRoundTripProperty(t *testing.T) {
	f := func(typ uint8, flags uint8, stream uint32, payload []byte) bool {
		if len(payload) > defaultMaxFrameSize {
			payload = payload[:defaultMaxFrameSize]
		}
		var buf bytes.Buffer
		fr := NewFramer(&buf)
		if err := fr.WriteFrame(FrameType(typ), flags, stream, payload); err != nil {
			return false
		}
		got, err := fr.ReadFrame()
		if err != nil {
			return false
		}
		return got.Type == FrameType(typ) && got.Flags == flags &&
			got.StreamID == stream&0x7FFFFFFF && bytes.Equal(got.Payload, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestSettingsRoundTrip(t *testing.T) {
	in := []Setting{{SettingMaxFrameSize, 65536}, {SettingInitialWindowSize, 1 << 20}}
	out, err := decodeSettings(encodeSettings(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 || out[0] != in[0] || out[1] != in[1] {
		t.Errorf("settings = %v", out)
	}
	if _, err := decodeSettings([]byte{1, 2, 3}); err == nil {
		t.Error("truncated settings accepted")
	}
}

func TestStripPadding(t *testing.T) {
	fr := Frame{Type: FrameData, Flags: FlagPadded, Payload: append([]byte{2}, 'a', 'b', 'c', 0, 0)}
	got, err := stripPadding(fr)
	if err != nil || string(got) != "abc" {
		t.Errorf("padded = %q, %v", got, err)
	}
	fr = Frame{Type: FrameHeaders, Flags: FlagPriority, Payload: append(make([]byte, 5), 'h')}
	got, err = stripPadding(fr)
	if err != nil || string(got) != "h" {
		t.Errorf("priority = %q, %v", got, err)
	}
	fr = Frame{Type: FrameData, Flags: FlagPadded, Payload: []byte{9, 'x'}}
	if _, err := stripPadding(fr); err == nil {
		t.Error("padding larger than payload accepted")
	}
}

func TestOversizeFrameRejected(t *testing.T) {
	var buf bytes.Buffer
	// Hand-craft a header claiming 1 MB.
	buf.Write([]byte{0x10, 0x00, 0x00, byte(FrameData), 0, 0, 0, 0, 1})
	fr := NewFramer(&buf)
	if _, err := fr.ReadFrame(); err == nil {
		t.Error("oversize frame accepted")
	}
}

func TestFrameTypeString(t *testing.T) {
	if FrameData.String() != "DATA" || FrameWindowUpdate.String() != "WINDOW_UPDATE" {
		t.Error("frame names")
	}
	if FrameType(0xEE).String() == "" {
		t.Error("unknown frame name")
	}
}

func TestHugeHeaderBlockSplitsIntoContinuation(t *testing.T) {
	// A 40 KB header value cannot fit one 16 KB frame: the client must
	// split HEADERS + CONTINUATION and the server must reassemble.
	huge := strings.Repeat("Z", 40<<10)
	dial := startServer(t, HandlerFunc(func(req *Request) *Response {
		for _, f := range req.Header {
			if f.Name == "x-huge" && f.Value == huge {
				return &Response{Status: 200, Header: []hpack.HeaderField{{Name: "x-huge-back", Value: huge}}}
			}
		}
		return &Response{Status: 400}
	}))
	cc := dialClient(t, dial)
	resp, err := cc.RoundTrip(context.Background(), &Request{
		Method: "GET", Scheme: "https", Authority: "h2.test", Path: "/",
		Header: []hpack.HeaderField{{Name: "x-huge", Value: huge}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != 200 {
		t.Fatalf("status = %d", resp.Status)
	}
	if resp.HeaderValue("x-huge-back") != huge {
		t.Error("server response continuation headers corrupted")
	}
}

package h2

import (
	"context"
	"errors"
	"fmt"
	"net"
	"strconv"
	"sync"

	"dohcost/internal/hpack"
)

// Request is an HTTP/2 request. Header carries only regular fields; the
// pseudo-headers travel in the dedicated struct fields.
type Request struct {
	Method    string
	Scheme    string
	Authority string
	Path      string
	Header    []hpack.HeaderField
	Body      []byte
}

// Response is a complete HTTP/2 response.
type Response struct {
	Status int
	Header []hpack.HeaderField
	Body   []byte
}

// HeaderValue returns the first value of a regular header field, or "".
func (r *Response) HeaderValue(name string) string {
	for _, f := range r.Header {
		if f.Name == name {
			return f.Value
		}
	}
	return ""
}

// ErrConnClosed reports the connection is no longer usable for new streams.
var ErrConnClosed = errors.New("h2: connection closed")

// clientStream tracks one in-flight request.
type clientStream struct {
	id   uint32
	resp Response
	err  error
	done chan struct{}

	sendWindow int64
	hasStatus  bool
	endStream  bool
}

// ClientConn is an HTTP/2 client connection multiplexing concurrent
// requests over one transport connection. Safe for concurrent use.
type ClientConn struct {
	conn net.Conn
	fr   *Framer

	encMu sync.Mutex // serializes HPACK encoding and HEADERS emission
	henc  *hpack.Encoder

	mu             sync.Mutex
	cond           *sync.Cond
	streams        map[uint32]*clientStream
	nextID         uint32
	connSendWindow int64
	initialWindow  int64
	peerMaxFrame   uint32
	closeErr       error

	// header continuation accumulation (read loop only)
	hdec       *hpack.Decoder
	contStream uint32
	contEnd    bool
	contBuf    []byte
	inContinue bool
}

// NewClientConn performs the client side of connection setup (preface and
// SETTINGS) on conn and starts the read loop.
func NewClientConn(conn net.Conn) (*ClientConn, error) {
	cc := &ClientConn{
		conn:           conn,
		fr:             NewFramer(conn),
		henc:           hpack.NewEncoder(),
		hdec:           hpack.NewDecoder(),
		streams:        make(map[uint32]*clientStream),
		nextID:         1,
		connSendWindow: defaultInitialWindowSize,
		initialWindow:  defaultInitialWindowSize,
		peerMaxFrame:   defaultMaxFrameSize,
	}
	cc.cond = sync.NewCond(&cc.mu)
	if err := cc.fr.WritePreface(); err != nil {
		return nil, fmt.Errorf("h2: writing preface: %w", err)
	}
	err := cc.fr.WriteFrame(FrameSettings, 0, 0, encodeSettings([]Setting{
		{SettingEnablePush, 0},
		{SettingInitialWindowSize, defaultInitialWindowSize},
		{SettingMaxConcurrentStreams, 1000},
	}))
	if err != nil {
		return nil, fmt.Errorf("h2: writing settings: %w", err)
	}
	go cc.readLoop()
	return cc, nil
}

// Stats exposes the connection's frame accounting.
func (cc *ClientConn) Stats() *FrameStats { return &cc.fr.Stats }

// Close tears the connection down, failing in-flight requests.
func (cc *ClientConn) Close() error {
	cc.fr.WriteFrame(FrameGoAway, 0, 0, make([]byte, 8))
	cc.failAll(ErrConnClosed)
	return cc.conn.Close()
}

// failAll marks the connection dead and completes every pending stream with
// err.
func (cc *ClientConn) failAll(err error) {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	if cc.closeErr == nil {
		cc.closeErr = err
	}
	for id, cs := range cc.streams {
		cs.err = cc.closeErr
		close(cs.done)
		delete(cc.streams, id)
	}
	cc.cond.Broadcast()
}

// RoundTrip sends req and waits for the complete response or ctx expiry.
// Concurrent RoundTrips multiplex onto independent streams.
func (cc *ClientConn) RoundTrip(ctx context.Context, req *Request) (*Response, error) {
	cs, err := cc.startRequest(req)
	if err != nil {
		return nil, err
	}
	if len(req.Body) > 0 {
		if err := cc.writeBody(cs, req.Body); err != nil {
			cc.abortStream(cs, ErrCodeInternal)
			return nil, err
		}
	}
	select {
	case <-cs.done:
		if cs.err != nil {
			return nil, cs.err
		}
		return &cs.resp, nil
	case <-ctx.Done():
		cc.abortStream(cs, ErrCodeCancel)
		return nil, ctx.Err()
	}
}

// startRequest allocates a stream and writes the HEADERS frame.
func (cc *ClientConn) startRequest(req *Request) (*clientStream, error) {
	cc.mu.Lock()
	if cc.closeErr != nil {
		cc.mu.Unlock()
		return nil, cc.closeErr
	}
	cs := &clientStream{
		id:         cc.nextID,
		done:       make(chan struct{}),
		sendWindow: cc.initialWindow,
	}
	cc.nextID += 2
	cc.streams[cs.id] = cs
	cc.mu.Unlock()

	fields := make([]hpack.HeaderField, 0, 4+len(req.Header))
	fields = append(fields,
		hpack.HeaderField{Name: ":method", Value: req.Method},
		hpack.HeaderField{Name: ":scheme", Value: req.Scheme},
		hpack.HeaderField{Name: ":authority", Value: req.Authority},
		hpack.HeaderField{Name: ":path", Value: req.Path},
	)
	fields = append(fields, req.Header...)

	var flags uint8
	if len(req.Body) == 0 {
		flags |= FlagEndStream
	}
	// Encoding and frame emission must stay ordered, so both happen under
	// encMu. (The framer additionally serializes the actual write.)
	cc.mu.Lock()
	maxFrame := cc.peerMaxFrame
	cc.mu.Unlock()
	cc.encMu.Lock()
	block := cc.henc.AppendEncode(nil, fields)
	err := writeHeaderBlock(cc.fr, cs.id, flags, block, maxFrame)
	cc.encMu.Unlock()
	if err != nil {
		cc.removeStream(cs)
		return nil, fmt.Errorf("h2: writing HEADERS: %w", err)
	}
	return cs, nil
}

// writeHeaderBlock emits a header block as HEADERS plus as many
// CONTINUATION frames as the peer's frame-size limit requires. extraFlags
// carries END_STREAM when there is no body.
func writeHeaderBlock(fr *Framer, streamID uint32, extraFlags uint8, block []byte, maxFrame uint32) error {
	first := true
	for {
		chunk := block
		if uint32(len(chunk)) > maxFrame {
			chunk = chunk[:maxFrame]
		}
		block = block[len(chunk):]
		var flags uint8
		typ := FrameContinuation
		if first {
			typ = FrameHeaders
			flags = extraFlags
			first = false
		}
		if len(block) == 0 {
			flags |= FlagEndHeaders
		}
		if err := fr.WriteFrame(typ, flags, streamID, chunk); err != nil {
			return err
		}
		if len(block) == 0 {
			return nil
		}
	}
}

// writeBody sends DATA frames under connection and stream flow control,
// ending the stream on the final frame.
func (cc *ClientConn) writeBody(cs *clientStream, body []byte) error {
	for len(body) > 0 {
		n, err := cc.reserveWindow(cs, len(body))
		if err != nil {
			return err
		}
		chunk := body[:n]
		body = body[n:]
		var flags uint8
		if len(body) == 0 {
			flags = FlagEndStream
		}
		if err := cc.fr.WriteFrame(FrameData, flags, cs.id, chunk); err != nil {
			return fmt.Errorf("h2: writing DATA: %w", err)
		}
	}
	return nil
}

// reserveWindow blocks until some send window is available on both the
// connection and the stream, then reserves and returns a chunk size.
func (cc *ClientConn) reserveWindow(cs *clientStream, want int) (int, error) {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	for {
		if cc.closeErr != nil {
			return 0, cc.closeErr
		}
		if cs.err != nil {
			return 0, cs.err
		}
		n := int64(want)
		if n > cc.connSendWindow {
			n = cc.connSendWindow
		}
		if n > cs.sendWindow {
			n = cs.sendWindow
		}
		if n > int64(cc.peerMaxFrame) {
			n = int64(cc.peerMaxFrame)
		}
		if n > 0 {
			cc.connSendWindow -= n
			cs.sendWindow -= n
			return int(n), nil
		}
		cc.cond.Wait()
	}
}

// abortStream resets a stream after a local failure or cancellation.
func (cc *ClientConn) abortStream(cs *clientStream, code ErrCode) {
	payload := make([]byte, 4)
	payload[0] = byte(uint32(code) >> 24)
	payload[1] = byte(uint32(code) >> 16)
	payload[2] = byte(uint32(code) >> 8)
	payload[3] = byte(uint32(code))
	cc.fr.WriteFrame(FrameRSTStream, 0, cs.id, payload)
	cc.removeStream(cs)
}

func (cc *ClientConn) removeStream(cs *clientStream) {
	cc.mu.Lock()
	delete(cc.streams, cs.id)
	cc.mu.Unlock()
}

// readLoop dispatches inbound frames until the connection dies.
func (cc *ClientConn) readLoop() {
	for {
		fr, err := cc.fr.ReadFrame()
		if err != nil {
			cc.failAll(fmt.Errorf("h2: read: %w", err))
			cc.conn.Close()
			return
		}
		if err := cc.handleFrame(fr); err != nil {
			cc.fr.WriteFrame(FrameGoAway, 0, 0, make([]byte, 8))
			cc.failAll(err)
			cc.conn.Close()
			return
		}
	}
}

func (cc *ClientConn) handleFrame(fr Frame) error {
	if cc.inContinue && fr.Type != FrameContinuation {
		return ConnError{ErrCodeProtocol, "expected CONTINUATION"}
	}
	switch fr.Type {
	case FrameSettings:
		return cc.handleSettings(fr)
	case FramePing:
		if fr.Flags&FlagAck == 0 {
			payload := append([]byte(nil), fr.Payload...)
			return cc.fr.WriteFrame(FramePing, FlagAck, 0, payload)
		}
	case FrameWindowUpdate:
		if len(fr.Payload) != 4 {
			return ConnError{ErrCodeFrameSize, "bad WINDOW_UPDATE"}
		}
		inc := int64(uint32(fr.Payload[0])<<24|uint32(fr.Payload[1])<<16|uint32(fr.Payload[2])<<8|uint32(fr.Payload[3])) & maxWindow
		cc.mu.Lock()
		if fr.StreamID == 0 {
			cc.connSendWindow += inc
		} else if cs := cc.streams[fr.StreamID]; cs != nil {
			cs.sendWindow += inc
		}
		cc.cond.Broadcast()
		cc.mu.Unlock()
	case FrameHeaders:
		block, err := stripPadding(fr)
		if err != nil {
			return err
		}
		cc.contStream = fr.StreamID
		cc.contEnd = fr.Flags&FlagEndStream != 0
		cc.contBuf = append(cc.contBuf[:0], block...)
		if fr.Flags&FlagEndHeaders != 0 {
			return cc.finishHeaders()
		}
		cc.inContinue = true
	case FrameContinuation:
		if !cc.inContinue || fr.StreamID != cc.contStream {
			return ConnError{ErrCodeProtocol, "unexpected CONTINUATION"}
		}
		cc.contBuf = append(cc.contBuf, fr.Payload...)
		if fr.Flags&FlagEndHeaders != 0 {
			cc.inContinue = false
			return cc.finishHeaders()
		}
	case FrameData:
		return cc.handleData(fr)
	case FrameRSTStream:
		cc.mu.Lock()
		cs := cc.streams[fr.StreamID]
		delete(cc.streams, fr.StreamID)
		cc.mu.Unlock()
		if cs != nil {
			cs.err = StreamError{fr.StreamID, ErrCodeStreamClosed, "reset by peer"}
			close(cs.done)
		}
	case FrameGoAway:
		return ConnError{ErrCodeNo, "received GOAWAY"}
	case FramePriority, FramePushPromise:
		// PRIORITY is advisory; PUSH_PROMISE is disabled via settings and
		// ignoring it is safe for this client's use.
	}
	return nil
}

func (cc *ClientConn) handleSettings(fr Frame) error {
	if fr.Flags&FlagAck != 0 {
		return nil
	}
	settings, err := decodeSettings(fr.Payload)
	if err != nil {
		return err
	}
	for _, s := range settings {
		switch s.ID {
		case SettingInitialWindowSize:
			cc.mu.Lock()
			delta := int64(s.Value) - cc.initialWindow
			cc.initialWindow = int64(s.Value)
			for _, cs := range cc.streams {
				cs.sendWindow += delta
			}
			cc.cond.Broadcast()
			cc.mu.Unlock()
		case SettingMaxFrameSize:
			cc.mu.Lock()
			cc.peerMaxFrame = s.Value
			cc.mu.Unlock()
		case SettingHeaderTableSize:
			cc.encMu.Lock()
			cc.henc.SetMaxDynamicTableSize(int(s.Value))
			cc.encMu.Unlock()
		}
	}
	return cc.fr.WriteFrame(FrameSettings, FlagAck, 0, nil)
}

// finishHeaders decodes an assembled header block and applies it to its
// stream.
func (cc *ClientConn) finishHeaders() error {
	fields, err := cc.hdec.Decode(cc.contBuf)
	if err != nil {
		return ConnError{ErrCodeCompression, err.Error()}
	}
	cc.mu.Lock()
	cs := cc.streams[cc.contStream]
	cc.mu.Unlock()
	if cs == nil {
		return nil // stream already gone (cancelled); state remains valid
	}
	for _, f := range fields {
		if f.Name == ":status" {
			code, err := strconv.Atoi(f.Value)
			if err != nil {
				return StreamError{cs.id, ErrCodeProtocol, "bad :status"}
			}
			cs.resp.Status = code
			cs.hasStatus = true
			continue
		}
		cs.resp.Header = append(cs.resp.Header, f)
	}
	if cc.contEnd {
		cc.completeStream(cs)
	}
	return nil
}

func (cc *ClientConn) handleData(fr Frame) error {
	data, err := stripPadding(fr)
	if err != nil {
		return err
	}
	cc.mu.Lock()
	cs := cc.streams[fr.StreamID]
	cc.mu.Unlock()
	if cs == nil {
		// Stale DATA for a cancelled stream: replenish the connection
		// window and move on.
		return cc.sendWindowUpdate(0, len(fr.Payload))
	}
	cs.resp.Body = append(cs.resp.Body, data...)
	if fr.Flags&FlagEndStream != 0 {
		cc.completeStream(cs)
		return cc.sendWindowUpdate(0, len(fr.Payload))
	}
	if err := cc.sendWindowUpdate(0, len(fr.Payload)); err != nil {
		return err
	}
	return cc.sendWindowUpdate(fr.StreamID, len(fr.Payload))
}

// sendWindowUpdate replenishes flow-control credit consumed by a DATA frame.
func (cc *ClientConn) sendWindowUpdate(streamID uint32, n int) error {
	if n <= 0 {
		return nil
	}
	payload := []byte{byte(n >> 24), byte(n >> 16), byte(n >> 8), byte(n)}
	return cc.fr.WriteFrame(FrameWindowUpdate, 0, streamID, payload)
}

func (cc *ClientConn) completeStream(cs *clientStream) {
	cc.mu.Lock()
	_, live := cc.streams[cs.id]
	delete(cc.streams, cs.id)
	cc.mu.Unlock()
	if !live {
		return
	}
	if !cs.hasStatus {
		cs.err = StreamError{cs.id, ErrCodeProtocol, "response without :status"}
	}
	close(cs.done)
}

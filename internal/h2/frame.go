// Package h2 implements the HTTP/2 subset the DoH cost study needs
// (RFC 7540): framing, HPACK header compression via internal/hpack, stream
// multiplexing with flow control, and client and server connection types.
//
// Two properties matter for the experiments and drove the design:
//
//   - Stream independence. Responses complete as their frames arrive,
//     regardless of order, which is what rescues DoH from the head-of-line
//     blocking that serializes DoT and pipelined HTTP/1.1 (Figure 2).
//
//   - Transparent accounting. The Framer tallies every byte it moves into
//     the paper's Figure 5 buckets — DATA payloads (Body), HEADERS payloads
//     (Hdr), and frame headers plus connection-management frames (Mgmt) —
//     so layer costs are measured, not inferred.
//
// Each frame is written with a single Write call, so the simulated network
// observes realistic per-frame flights for packet accounting.
package h2

import (
	"encoding/binary"
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"dohcost/internal/meter"
)

// FrameType is an HTTP/2 frame type (RFC 7540 §6).
type FrameType uint8

// Frame types.
const (
	FrameData         FrameType = 0x0
	FrameHeaders      FrameType = 0x1
	FramePriority     FrameType = 0x2
	FrameRSTStream    FrameType = 0x3
	FrameSettings     FrameType = 0x4
	FramePushPromise  FrameType = 0x5
	FramePing         FrameType = 0x6
	FrameGoAway       FrameType = 0x7
	FrameWindowUpdate FrameType = 0x8
	FrameContinuation FrameType = 0x9
)

// String implements fmt.Stringer.
func (t FrameType) String() string {
	switch t {
	case FrameData:
		return "DATA"
	case FrameHeaders:
		return "HEADERS"
	case FramePriority:
		return "PRIORITY"
	case FrameRSTStream:
		return "RST_STREAM"
	case FrameSettings:
		return "SETTINGS"
	case FramePushPromise:
		return "PUSH_PROMISE"
	case FramePing:
		return "PING"
	case FrameGoAway:
		return "GOAWAY"
	case FrameWindowUpdate:
		return "WINDOW_UPDATE"
	case FrameContinuation:
		return "CONTINUATION"
	}
	return fmt.Sprintf("FRAME_%#x", uint8(t))
}

// Frame flags.
const (
	FlagEndStream  = 0x1 // DATA, HEADERS
	FlagAck        = 0x1 // SETTINGS, PING
	FlagEndHeaders = 0x4 // HEADERS, CONTINUATION
	FlagPadded     = 0x8 // DATA, HEADERS
	FlagPriority   = 0x20
)

// Settings identifiers (RFC 7540 §6.5.2).
const (
	SettingHeaderTableSize      = 0x1
	SettingEnablePush           = 0x2
	SettingMaxConcurrentStreams = 0x3
	SettingInitialWindowSize    = 0x4
	SettingMaxFrameSize         = 0x5
	SettingMaxHeaderListSize    = 0x6
)

// Protocol constants.
const (
	// ClientPreface opens every client connection (RFC 7540 §3.5).
	ClientPreface = "PRI * HTTP/2.0\r\n\r\nSM\r\n\r\n"

	frameHeaderLen           = 9
	defaultMaxFrameSize      = 16384
	defaultInitialWindowSize = 65535
	maxWindow                = 1<<31 - 1
)

// ErrCode is an HTTP/2 error code for RST_STREAM and GOAWAY.
type ErrCode uint32

// Error codes used by this implementation.
const (
	ErrCodeNo              ErrCode = 0x0
	ErrCodeProtocol        ErrCode = 0x1
	ErrCodeInternal        ErrCode = 0x2
	ErrCodeFlowControl     ErrCode = 0x3
	ErrCodeStreamClosed    ErrCode = 0x5
	ErrCodeFrameSize       ErrCode = 0x6
	ErrCodeRefusedStream   ErrCode = 0x7
	ErrCodeCancel          ErrCode = 0x8
	ErrCodeCompression     ErrCode = 0x9
	ErrCodeEnhanceYourCalm ErrCode = 0xb
)

// ConnError is a connection-level protocol violation: the whole connection
// must be torn down with GOAWAY.
type ConnError struct {
	Code   ErrCode
	Reason string
}

// Error implements error.
func (e ConnError) Error() string {
	return fmt.Sprintf("h2: connection error %d: %s", e.Code, e.Reason)
}

// StreamError fails one stream with RST_STREAM and leaves the connection up.
type StreamError struct {
	StreamID uint32
	Code     ErrCode
	Reason   string
}

// Error implements error.
func (e StreamError) Error() string {
	return fmt.Sprintf("h2: stream %d error %d: %s", e.StreamID, e.Code, e.Reason)
}

// Frame is one parsed HTTP/2 frame. Payload is only valid until the next
// ReadFrame call.
type Frame struct {
	Type     FrameType
	Flags    uint8
	StreamID uint32
	Payload  []byte
}

// FrameStats tallies bytes by the paper's Figure 5 buckets, covering both
// directions of the connection. All counters are atomic: the read loop and
// writers update them concurrently.
type FrameStats struct {
	BodyBytes atomic.Int64 // DATA payloads
	HdrBytes  atomic.Int64 // HEADERS + CONTINUATION payloads
	MgmtBytes atomic.Int64 // frame headers, management frames, preface
	Frames    atomic.Int64
}

// record attributes one frame.
func (s *FrameStats) record(t FrameType, payloadLen int) {
	s.Frames.Add(1)
	s.MgmtBytes.Add(frameHeaderLen)
	switch t {
	case FrameData:
		s.BodyBytes.Add(int64(payloadLen))
	case FrameHeaders, FrameContinuation:
		s.HdrBytes.Add(int64(payloadLen))
	default:
		s.MgmtBytes.Add(int64(payloadLen))
	}
}

// Layer exports the tallies in the form the metering layer consumes.
func (s *FrameStats) Layer() meter.H2Layer {
	body, hdr, mgmt := s.BodyBytes.Load(), s.HdrBytes.Load(), s.MgmtBytes.Load()
	return meter.H2Layer{
		BodyBytes:  body,
		HdrBytes:   hdr,
		MgmtBytes:  mgmt,
		TotalBytes: body + hdr + mgmt,
	}
}

// Snapshot returns a point-in-time copy for delta accounting.
func (s *FrameStats) Snapshot() meter.H2Layer { return s.Layer() }

// Framer reads and writes HTTP/2 frames on one connection and owns the
// byte accounting. Writes are serialized by the caller (connection write
// mutex); reads happen on the read loop.
type Framer struct {
	r io.Reader
	w io.Writer

	maxReadFrameSize uint32
	readBuf          []byte
	readHeader       [frameHeaderLen]byte

	wmu      sync.Mutex
	writeBuf []byte

	Stats FrameStats
}

// NewFramer wraps a connection.
func NewFramer(rw io.ReadWriter) *Framer {
	return &Framer{
		r:                rw,
		w:                rw,
		maxReadFrameSize: defaultMaxFrameSize,
		readBuf:          make([]byte, defaultMaxFrameSize),
	}
}

// SetMaxReadFrameSize raises the acceptable inbound frame size (after
// SETTINGS negotiation).
func (f *Framer) SetMaxReadFrameSize(n uint32) {
	if n < defaultMaxFrameSize {
		n = defaultMaxFrameSize
	}
	f.maxReadFrameSize = n
	if int(n) > len(f.readBuf) {
		f.readBuf = make([]byte, n)
	}
}

// ReadFrame reads and accounts one frame. The returned payload aliases the
// framer's buffer.
func (f *Framer) ReadFrame() (Frame, error) {
	if _, err := io.ReadFull(f.r, f.readHeader[:]); err != nil {
		return Frame{}, err
	}
	length := uint32(f.readHeader[0])<<16 | uint32(f.readHeader[1])<<8 | uint32(f.readHeader[2])
	if length > f.maxReadFrameSize {
		return Frame{}, ConnError{ErrCodeFrameSize, fmt.Sprintf("frame of %d bytes exceeds max %d", length, f.maxReadFrameSize)}
	}
	fr := Frame{
		Type:     FrameType(f.readHeader[3]),
		Flags:    f.readHeader[4],
		StreamID: binary.BigEndian.Uint32(f.readHeader[5:]) & 0x7FFFFFFF,
	}
	if length > 0 {
		if _, err := io.ReadFull(f.r, f.readBuf[:length]); err != nil {
			return Frame{}, err
		}
		fr.Payload = f.readBuf[:length]
	}
	f.Stats.record(fr.Type, int(length))
	return fr, nil
}

// WriteFrame emits one frame with a single Write call so the network sees
// one flight per frame. Safe for concurrent use.
func (f *Framer) WriteFrame(t FrameType, flags uint8, streamID uint32, payload []byte) error {
	if len(payload) >= 1<<24 {
		return ConnError{ErrCodeFrameSize, "payload too large"}
	}
	f.wmu.Lock()
	defer f.wmu.Unlock()
	f.writeBuf = f.writeBuf[:0]
	f.writeBuf = append(f.writeBuf,
		byte(len(payload)>>16), byte(len(payload)>>8), byte(len(payload)),
		byte(t), flags)
	f.writeBuf = binary.BigEndian.AppendUint32(f.writeBuf, streamID&0x7FFFFFFF)
	f.writeBuf = append(f.writeBuf, payload...)
	if _, err := f.w.Write(f.writeBuf); err != nil {
		return err
	}
	f.Stats.record(t, len(payload))
	return nil
}

// WritePreface sends the client connection preface and accounts it as
// management overhead.
func (f *Framer) WritePreface() error {
	if _, err := io.WriteString(f.w, ClientPreface); err != nil {
		return err
	}
	f.Stats.MgmtBytes.Add(int64(len(ClientPreface)))
	return nil
}

// ReadPreface consumes and verifies the client preface on the server side.
func (f *Framer) ReadPreface() error {
	buf := make([]byte, len(ClientPreface))
	if _, err := io.ReadFull(f.r, buf); err != nil {
		return err
	}
	if string(buf) != ClientPreface {
		return ConnError{ErrCodeProtocol, "bad client preface"}
	}
	f.Stats.MgmtBytes.Add(int64(len(ClientPreface)))
	return nil
}

// Setting is one SETTINGS parameter.
type Setting struct {
	ID    uint16
	Value uint32
}

// encodeSettings packs settings into a SETTINGS payload.
func encodeSettings(settings []Setting) []byte {
	buf := make([]byte, 0, len(settings)*6)
	for _, s := range settings {
		buf = binary.BigEndian.AppendUint16(buf, s.ID)
		buf = binary.BigEndian.AppendUint32(buf, s.Value)
	}
	return buf
}

// decodeSettings parses a SETTINGS payload.
func decodeSettings(payload []byte) ([]Setting, error) {
	if len(payload)%6 != 0 {
		return nil, ConnError{ErrCodeFrameSize, "SETTINGS length not a multiple of 6"}
	}
	out := make([]Setting, 0, len(payload)/6)
	for i := 0; i < len(payload); i += 6 {
		out = append(out, Setting{
			ID:    binary.BigEndian.Uint16(payload[i:]),
			Value: binary.BigEndian.Uint32(payload[i+2:]),
		})
	}
	return out, nil
}

// stripPadding removes PADDED/PRIORITY envelope from HEADERS and DATA
// payloads.
func stripPadding(fr Frame) ([]byte, error) {
	p := fr.Payload
	var padLen int
	if fr.Flags&FlagPadded != 0 {
		if len(p) < 1 {
			return nil, ConnError{ErrCodeProtocol, "padded frame too short"}
		}
		padLen = int(p[0])
		p = p[1:]
	}
	if fr.Type == FrameHeaders && fr.Flags&FlagPriority != 0 {
		if len(p) < 5 {
			return nil, ConnError{ErrCodeProtocol, "priority block too short"}
		}
		p = p[5:]
	}
	if padLen > len(p) {
		return nil, ConnError{ErrCodeProtocol, "padding exceeds payload"}
	}
	return p[:len(p)-padLen], nil
}

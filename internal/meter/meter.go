// Package meter turns the raw wire observations of the simulated network
// into the quantities the paper reports: total bytes per resolution
// (Figure 3), total packets per resolution (Figure 4), and the per-layer
// breakdown Body / Hdr / Mgmt / TLS / TCP (Figure 5).
//
// The ground truth comes from two places. netsim connections count the
// bytes, write flights and MSS-sized packets of the encrypted stream; this
// package layers a TCP header/ACK/handshake model on top. Inside the TLS
// session, this repository's own HTTP/2 stack reports exact per-frame-class
// byte tallies, so the TLS layer's cost falls out as wire bytes minus
// HTTP/2 bytes — no pcap inference needed.
package meter

import (
	"encoding/binary"
	"fmt"
	"net"
	"sync/atomic"

	"dohcost/internal/netsim"
)

// Per-packet header cost assumptions, matching a typical Linux sender on
// Ethernet: 20 bytes IPv4 + 20 bytes TCP + 12 bytes timestamp option, and
// 20 bytes IPv4 + 8 bytes UDP.
const (
	TCPPacketHeaderBytes = 52
	UDPPacketHeaderBytes = 28
	// TCPHandshakePackets is SYN, SYN-ACK, ACK.
	TCPHandshakePackets = 3
	// TCPTeardownPackets is FIN, ACK, FIN, ACK.
	TCPTeardownPackets = 4
	// tcpHandshakeExtraBytes covers the larger SYN/SYN-ACK option blocks
	// (MSS, window scale, SACK-permitted) beyond the steady-state 52.
	tcpHandshakeExtraBytes = 8
)

// TCPAccounting decomposes one connection's packet costs.
type TCPAccounting struct {
	DataPackets      int64 // MSS-sliced data segments, both directions
	AckPackets       int64 // pure ACKs under delayed-ACK (one per two data packets)
	HandshakePackets int64
	TeardownPackets  int64
}

// TotalPackets sums all packet classes.
func (a TCPAccounting) TotalPackets() int64 {
	return a.DataPackets + a.AckPackets + a.HandshakePackets + a.TeardownPackets
}

// HeaderBytes is the TCP+IP header cost of every packet in the accounting.
func (a TCPAccounting) HeaderBytes() int64 {
	return a.TotalPackets()*TCPPacketHeaderBytes + a.HandshakePackets*tcpHandshakeExtraBytes
}

// AccountTCP models packets for the observed stream traffic. Set
// includeSetup for connections whose establishment and teardown should be
// charged to this sample (non-persistent connections), and leave it false
// for per-request deltas on persistent connections.
func AccountTCP(stats netsim.ConnStats, includeSetup bool) TCPAccounting {
	a := TCPAccounting{
		DataPackets: stats.OutPackets + stats.InPackets,
	}
	// Delayed ACK: receivers emit roughly one pure ACK per two incoming
	// data packets. Both endpoints do this.
	a.AckPackets = (stats.OutPackets+1)/2 + (stats.InPackets+1)/2
	if includeSetup {
		a.HandshakePackets = TCPHandshakePackets
		a.TeardownPackets = TCPTeardownPackets
	}
	return a
}

// WireCost is the paper's per-resolution cost pair.
type WireCost struct {
	Bytes   int64
	Packets int64
}

// String renders the pair the way EXPERIMENTS.md tabulates it.
func (w WireCost) String() string {
	return fmt.Sprintf("%d bytes / %d packets", w.Bytes, w.Packets)
}

// TCPWireCost converts stream stats into total on-the-wire cost including
// TCP/IP headers.
func TCPWireCost(stats netsim.ConnStats, includeSetup bool) WireCost {
	acct := AccountTCP(stats, includeSetup)
	return WireCost{
		Bytes:   stats.Total() + acct.HeaderBytes(),
		Packets: acct.TotalPackets(),
	}
}

// UDPWireCost is the cost of a datagram exchange: every datagram is one
// packet plus IP+UDP headers.
func UDPWireCost(payloadBytes []int) WireCost {
	var w WireCost
	for _, n := range payloadBytes {
		w.Packets++
		w.Bytes += int64(n) + UDPPacketHeaderBytes
	}
	return w
}

// Breakdown is Figure 5's per-layer decomposition of one DoH resolution.
// Bytes in each bucket cover both directions.
type Breakdown struct {
	Body int64 // HTTP/2 DATA payloads (the DNS messages themselves)
	Hdr  int64 // HEADERS/CONTINUATION payloads (HPACK-compressed headers)
	Mgmt int64 // frame headers, SETTINGS/WINDOW_UPDATE/PING/GOAWAY, preface
	TLS  int64 // TLS records minus embedded HTTP/2 bytes (handshake, tags…)
	TCP  int64 // TCP/IP packet headers
}

// Total sums all layers; it equals the Figure 3 byte cost.
func (b Breakdown) Total() int64 { return b.Body + b.Hdr + b.Mgmt + b.TLS + b.TCP }

// String renders one compact line.
func (b Breakdown) String() string {
	return fmt.Sprintf("body=%d hdr=%d mgmt=%d tls=%d tcp=%d total=%d",
		b.Body, b.Hdr, b.Mgmt, b.TLS, b.TCP, b.Total())
}

// H2Layer is the per-frame-class byte view this repository's HTTP/2 stack
// exports (internal/h2 produces it; meter consumes it without importing h2
// to keep the dependency arrow pointing upward).
type H2Layer struct {
	BodyBytes  int64 // DATA payload bytes
	HdrBytes   int64 // HEADERS + CONTINUATION payload bytes
	MgmtBytes  int64 // all frame headers + management frame payloads + preface
	TotalBytes int64 // everything HTTP/2 handed to TLS
}

// ComposeBreakdown assembles Figure 5's stack for one resolution from the
// three observation points.
func ComposeBreakdown(wire netsim.ConnStats, h2 H2Layer, includeSetup bool) Breakdown {
	acct := AccountTCP(wire, includeSetup)
	tlsOverhead := wire.Total() - h2.TotalBytes
	if tlsOverhead < 0 {
		tlsOverhead = 0
	}
	return Breakdown{
		Body: h2.BodyBytes,
		Hdr:  h2.HdrBytes,
		Mgmt: h2.MgmtBytes,
		TLS:  tlsOverhead,
		TCP:  acct.HeaderBytes(),
	}
}

// CountingConn wraps a net.Conn and tallies the bytes crossing it. Placed
// between an application protocol and TLS it measures plaintext; placed
// under TLS it measures ciphertext. Counters are safe for concurrent use.
type CountingConn struct {
	net.Conn
	out atomic.Int64
	in  atomic.Int64
}

// NewCountingConn wraps c.
func NewCountingConn(c net.Conn) *CountingConn { return &CountingConn{Conn: c} }

// Read implements net.Conn.
func (c *CountingConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	c.in.Add(int64(n))
	return n, err
}

// Write implements net.Conn.
func (c *CountingConn) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	c.out.Add(int64(n))
	return n, err
}

// BytesOut reports bytes written through the wrapper.
func (c *CountingConn) BytesOut() int64 { return c.out.Load() }

// BytesIn reports bytes read through the wrapper.
func (c *CountingConn) BytesIn() int64 { return c.in.Load() }

// TLS record content types (RFC 8446 §5.1).
const (
	RecordChangeCipherSpec = 20
	RecordAlert            = 21
	RecordHandshake        = 22
	RecordApplicationData  = 23
)

// RecordStats tallies one direction of a TLS record stream.
type RecordStats struct {
	Records        int64
	RecordBytes    int64 // total including 5-byte record headers
	HandshakeBytes int64 // visible content-type-22 records (pre-encryption)
	AppDataBytes   int64 // content-type-23 records (in TLS 1.3, most of the
	// handshake also travels disguised as application data)
	AlertBytes int64
	CCSBytes   int64
}

// RecordObserver wraps the conn under crypto/tls and parses record framing
// in both directions. It verifies that the byte stream really is TLS and
// feeds the record-census column of EXPERIMENTS.md.
type RecordObserver struct {
	net.Conn
	outParse recordParser
	inParse  recordParser
}

// NewRecordObserver wraps c.
func NewRecordObserver(c net.Conn) *RecordObserver { return &RecordObserver{Conn: c} }

// Read implements net.Conn.
func (o *RecordObserver) Read(p []byte) (int, error) {
	n, err := o.Conn.Read(p)
	if n > 0 {
		o.inParse.feed(p[:n])
	}
	return n, err
}

// Write implements net.Conn.
func (o *RecordObserver) Write(p []byte) (int, error) {
	n, err := o.Conn.Write(p)
	if n > 0 {
		o.outParse.feed(p[:n])
	}
	return n, err
}

// Outbound returns the census of records written by this endpoint.
func (o *RecordObserver) Outbound() RecordStats { return o.outParse.stats }

// Inbound returns the census of records received by this endpoint.
func (o *RecordObserver) Inbound() RecordStats { return o.inParse.stats }

// recordParser is a streaming TLS record-header scanner. It is not
// goroutine-safe; each direction of a connection is fed from a single
// goroutine (crypto/tls serializes reads and writes independently).
type recordParser struct {
	stats   RecordStats
	header  [5]byte
	hdrLen  int
	skip    int // payload bytes of the current record still to consume
	curType byte
}

func (r *recordParser) feed(b []byte) {
	for len(b) > 0 {
		if r.skip > 0 {
			n := min(r.skip, len(b))
			r.creditPayload(int64(n))
			r.skip -= n
			b = b[n:]
			continue
		}
		need := 5 - r.hdrLen
		n := copy(r.header[r.hdrLen:], b[:min(need, len(b))])
		r.hdrLen += n
		b = b[n:]
		if r.hdrLen < 5 {
			return
		}
		r.hdrLen = 0
		r.curType = r.header[0]
		length := int(binary.BigEndian.Uint16(r.header[3:]))
		r.stats.Records++
		r.stats.RecordBytes += 5 + int64(length)
		r.creditPayload(0) // classify header cost lazily via creditPayload
		r.skip = length
	}
}

func (r *recordParser) creditPayload(n int64) {
	switch r.curType {
	case RecordHandshake:
		r.stats.HandshakeBytes += n
	case RecordApplicationData:
		r.stats.AppDataBytes += n
	case RecordAlert:
		r.stats.AlertBytes += n
	case RecordChangeCipherSpec:
		r.stats.CCSBytes += n
	}
}

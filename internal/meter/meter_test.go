package meter

import (
	"crypto/tls"
	"io"
	"testing"
	"testing/quick"

	"dohcost/internal/netsim"
	"dohcost/internal/tlsx"
)

func TestAccountTCPBasic(t *testing.T) {
	stats := netsim.ConnStats{
		OutBytes: 1000, OutSegments: 3, OutPackets: 3,
		InBytes: 5000, InSegments: 4, InPackets: 5,
	}
	a := AccountTCP(stats, false)
	if a.DataPackets != 8 {
		t.Errorf("data packets = %d, want 8", a.DataPackets)
	}
	// ceil(3/2) + ceil(5/2) = 2 + 3 = 5 ACKs.
	if a.AckPackets != 5 {
		t.Errorf("acks = %d, want 5", a.AckPackets)
	}
	if a.HandshakePackets != 0 || a.TeardownPackets != 0 {
		t.Error("setup charged on persistent accounting")
	}
	if a.TotalPackets() != 13 {
		t.Errorf("total = %d", a.TotalPackets())
	}

	withSetup := AccountTCP(stats, true)
	if withSetup.HandshakePackets != 3 || withSetup.TeardownPackets != 4 {
		t.Errorf("setup accounting = %+v", withSetup)
	}
	if withSetup.TotalPackets() != 20 {
		t.Errorf("total with setup = %d", withSetup.TotalPackets())
	}
}

func TestTCPWireCost(t *testing.T) {
	stats := netsim.ConnStats{OutBytes: 100, OutPackets: 1, InBytes: 200, InPackets: 1}
	w := TCPWireCost(stats, false)
	// 2 data + 2 ACKs = 4 packets; bytes = 300 + 4*52.
	if w.Packets != 4 || w.Bytes != 300+4*52 {
		t.Errorf("cost = %v", w)
	}
	if w.String() == "" {
		t.Error("empty String")
	}
}

func TestUDPWireCost(t *testing.T) {
	w := UDPWireCost([]int{37, 117})
	if w.Packets != 2 {
		t.Errorf("packets = %d, want 2", w.Packets)
	}
	if w.Bytes != 37+117+2*28 {
		t.Errorf("bytes = %d, want %d", w.Bytes, 37+117+2*28)
	}
}

func TestComposeBreakdownConsistency(t *testing.T) {
	wire := netsim.ConnStats{OutBytes: 2000, OutPackets: 3, InBytes: 4000, InPackets: 4}
	h2 := H2Layer{BodyBytes: 150, HdrBytes: 300, MgmtBytes: 250, TotalBytes: 700}
	b := ComposeBreakdown(wire, h2, true)
	if b.Body != 150 || b.Hdr != 300 || b.Mgmt != 250 {
		t.Errorf("h2 layers = %+v", b)
	}
	if b.TLS != 6000-700 {
		t.Errorf("tls = %d, want %d", b.TLS, 6000-700)
	}
	acct := AccountTCP(wire, true)
	if b.TCP != acct.HeaderBytes() {
		t.Errorf("tcp = %d, want %d", b.TCP, acct.HeaderBytes())
	}
	// Invariant: layers sum to wire bytes + packet headers.
	if b.Total() != wire.Total()+acct.HeaderBytes() {
		t.Errorf("breakdown total %d != wire+headers %d", b.Total(), wire.Total()+acct.HeaderBytes())
	}
	if b.String() == "" {
		t.Error("empty String")
	}
}

func TestComposeBreakdownClampsNegativeTLS(t *testing.T) {
	wire := netsim.ConnStats{OutBytes: 10}
	h2 := H2Layer{TotalBytes: 100}
	if b := ComposeBreakdown(wire, h2, false); b.TLS != 0 {
		t.Errorf("negative TLS not clamped: %+v", b)
	}
}

func TestBreakdownInvariantProperty(t *testing.T) {
	f := func(ob, ib uint16, op, ip uint8, body, hdr, mgmt uint16) bool {
		wire := netsim.ConnStats{
			OutBytes: int64(ob), OutPackets: int64(op),
			InBytes: int64(ib), InPackets: int64(ip),
		}
		h2 := H2Layer{
			BodyBytes: int64(body), HdrBytes: int64(hdr), MgmtBytes: int64(mgmt),
			TotalBytes: int64(body) + int64(hdr) + int64(mgmt),
		}
		b := ComposeBreakdown(wire, h2, true)
		if b.Body < 0 || b.Hdr < 0 || b.Mgmt < 0 || b.TLS < 0 || b.TCP < 0 {
			return false
		}
		if h2.TotalBytes <= wire.Total() {
			return b.Total() == wire.Total()+AccountTCP(wire, true).HeaderBytes()
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestCountingConn(t *testing.T) {
	n := netsim.New(1)
	l, _ := n.Listen("s:1")
	go func() {
		c, _ := l.Accept()
		buf := make([]byte, 10)
		io.ReadFull(c, buf)
		c.Write([]byte("ok"))
	}()
	raw, err := n.Dial("c", "s:1")
	if err != nil {
		t.Fatal(err)
	}
	cc := NewCountingConn(raw)
	defer cc.Close()
	cc.Write(make([]byte, 10))
	buf := make([]byte, 2)
	io.ReadFull(cc, buf)
	if cc.BytesOut() != 10 || cc.BytesIn() != 2 {
		t.Errorf("counts = out %d in %d", cc.BytesOut(), cc.BytesIn())
	}
}

func TestRecordObserverSeesTLSRecords(t *testing.T) {
	chain, err := tlsx.GenerateChain(tlsx.CloudflareLike("m.test"))
	if err != nil {
		t.Fatal(err)
	}
	n := netsim.New(1)
	l, _ := n.Listen("m.test:443")
	go func() {
		raw, err := l.Accept()
		if err != nil {
			return
		}
		tc := tls.Server(raw, chain.ServerConfig(0, 0))
		defer tc.Close()
		buf := make([]byte, 16)
		nn, err := tc.Read(buf)
		if err != nil {
			return
		}
		tc.Write(buf[:nn])
	}()
	raw, err := n.Dial("client", "m.test:443")
	if err != nil {
		t.Fatal(err)
	}
	obs := NewRecordObserver(raw)
	tc := tls.Client(obs, chain.ClientConfig("m.test"))
	defer tc.Close()
	if err := tc.Handshake(); err != nil {
		t.Fatal(err)
	}
	tc.Write([]byte("query"))
	buf := make([]byte, 5)
	if _, err := io.ReadFull(tc, buf); err != nil {
		t.Fatal(err)
	}

	out, in := obs.Outbound(), obs.Inbound()
	if out.Records < 2 { // ClientHello + at least finished/appdata
		t.Errorf("outbound records = %d", out.Records)
	}
	if in.Records < 2 { // ServerHello + encrypted flight
		t.Errorf("inbound records = %d", in.Records)
	}
	// The visible ClientHello travels as a type-22 record.
	if out.HandshakeBytes == 0 {
		t.Error("no visible outbound handshake bytes")
	}
	// In TLS 1.3 the certificate flight arrives as application data; with
	// a ~2KB chain it must dominate.
	if in.AppDataBytes < 1500 {
		t.Errorf("inbound appdata bytes = %d, want > 1500 (cert flight)", in.AppDataBytes)
	}
	// Record header accounting: total equals 5*records + payloads.
	sum := out.HandshakeBytes + out.AppDataBytes + out.AlertBytes + out.CCSBytes + 5*out.Records
	if out.RecordBytes != sum {
		t.Errorf("outbound record bytes %d != parts %d", out.RecordBytes, sum)
	}
}

func TestRecordParserHandlesFragmentation(t *testing.T) {
	// One 300-byte handshake record delivered a byte at a time.
	var p recordParser
	rec := make([]byte, 305)
	rec[0] = RecordHandshake
	rec[1], rec[2] = 3, 3
	rec[3], rec[4] = 0x01, 0x2C // length 300
	for i := range rec {
		p.feed(rec[i : i+1])
	}
	if p.stats.Records != 1 || p.stats.HandshakeBytes != 300 || p.stats.RecordBytes != 305 {
		t.Errorf("stats = %+v", p.stats)
	}
	// Two records in one buffer.
	var q recordParser
	two := append(append([]byte{}, 23, 3, 3, 0, 2, 'h', 'i'), 21, 3, 3, 0, 1, 'x')
	q.feed(two)
	if q.stats.Records != 2 || q.stats.AppDataBytes != 2 || q.stats.AlertBytes != 1 {
		t.Errorf("stats = %+v", q.stats)
	}
}

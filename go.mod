module dohcost

go 1.24

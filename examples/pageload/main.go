// Page-load demo: a miniature of the paper's Figure 6. Load a slice of the
// synthetic top sites while resolving through legacy DNS and DoH, and
// compare cumulative DNS time (inflates with DoH) against onload time
// (barely moves) — the study's headline result.
package main

import (
	"fmt"
	"log"

	"dohcost"
	"dohcost/internal/core"
	"dohcost/internal/stats"
)

func main() {
	fmt.Println("loading 30 pages x 2 loads under five resolver configurations…")
	res, err := dohcost.RunFigure6(core.Fig6Config{
		Pages:   30,
		Loads:   2,
		Seed:    11,
		Workers: 8,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(dohcost.RenderFigure6(res))

	udp := res.Series("U/CF")
	doh := res.Series("H/CF")
	dnsDelta := stats.NewCDF(doh.DNSms).Quantile(0.5) / stats.NewCDF(udp.DNSms).Quantile(0.5)
	loadDelta := stats.NewCDF(doh.Loadms).Quantile(0.5) / stats.NewCDF(udp.Loadms).Quantile(0.5)
	fmt.Printf("switching U/CF -> H/CF: median cumulative DNS x%.2f, median onload x%.2f\n",
		dnsDelta, loadDelta)
	fmt.Println("DoH costs resolution time, but the browser hides it: pages load at the")
	fmt.Println("same speed — \"improved security … with only marginal performance impact\".")
}

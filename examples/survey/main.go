// Survey demo: define a brand-new DoH provider profile, deploy it next to
// the paper's nine, and probe the whole fleet — showing how the Table 1/2
// apparatus extends beyond the original provider set.
package main

import (
	"crypto/tls"
	"fmt"
	"log"

	"dohcost/internal/landscape"
	"dohcost/internal/netsim"
)

func main() {
	providers := landscape.DefaultProviders()
	providers = append(providers, landscape.Provider{
		Name: "Example Research", Host: "doh.research.example",
		Services: []landscape.Service{{
			Marker: "ER", URL: "https://doh.research.example/dns-query",
			Host: "doh.research.example", Path: "/dns-query", Wire: true, JSON: true,
		}},
		TLSMin: tls.VersionTLS13, TLSMax: tls.VersionTLS13, // 1.3-only: strictest column in the matrix
		ChainBytes: 2200,
		CT:         true, OCSPMustStaple: true, // the hardening the paper wished providers adopted
		DoT:      true,
		Steering: landscape.SteeringAnycast,
	})

	n := netsim.New(99)
	dep, err := landscape.Deploy(n, providers)
	if err != nil {
		log.Fatal(err)
	}
	defer dep.Close()

	probed, err := landscape.NewProber(dep).ProbeAll()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(landscape.RenderTable1(providers))
	fmt.Println()
	fmt.Print(landscape.RenderTable2(probed))
	fmt.Println()

	for _, f := range probed {
		if f.Marker != "ER" {
			continue
		}
		fmt.Println("the new provider as the prober saw it:")
		fmt.Printf("  TLS 1.3 only: 1.2=%v 1.3=%v\n", f.TLS[tls.VersionTLS12], f.TLS[tls.VersionTLS13])
		fmt.Printf("  OCSP must-staple: %v (the paper found no provider demanding it)\n", f.OCSP)
	}
}

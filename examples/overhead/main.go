// Overhead dissection: resolve a handful of names over DoH against both
// provider deployments and print where every byte went — the per-layer
// stack of the paper's Figure 5, live.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"dohcost"
)

func main() {
	env, err := dohcost.NewEnvironment(dohcost.EnvironmentConfig{Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	defer env.Close()

	for _, provider := range []dohcost.ResolverHost{dohcost.Cloudflare, dohcost.Google} {
		fmt.Printf("=== %s (persistent HTTP/2 connection) ===\n", provider)
		var costs []dohcost.Cost
		r, err := env.DoH(provider, dohcost.Options{
			Persistent: true,
			Recorder:   dohcost.CostFunc(func(c dohcost.Cost) { costs = append(costs, c) }),
		})
		if err != nil {
			log.Fatal(err)
		}
		names := []string{"a.example.com", "b.example.com", "c.example.com", "d.example.com"}
		for _, name := range names {
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			if _, err := r.Exchange(ctx, dohcost.NewQuery(name, dohcost.TypeA)); err != nil {
				log.Fatalf("%s: %v", name, err)
			}
			cancel()
		}
		r.Close()

		fmt.Printf("%-4s %-22s %10s | %6s %6s %6s %6s %6s\n",
			"q#", "", "total", "body", "hdr", "mgmt", "tls", "tcp")
		for i, c := range costs {
			bd := c.Breakdown()
			note := "steady state"
			if c.IncludesSetup {
				note = "includes TCP+TLS setup"
			}
			fmt.Printf("%-4d %-22s %9dB | %6d %6d %6d %6d %6d\n",
				i+1, note, bd.Total(), bd.Body, bd.Hdr, bd.Mgmt, bd.TLS, bd.TCP)
		}
		fmt.Println()
	}
	fmt.Println("the first exchange carries the certificate chain in its TLS layer; the")
	fmt.Println("Google-like deployment's chain is ~1.1KB larger (3101 vs 1960 bytes),")
	fmt.Println("and its RFC 8467 response padding keeps even warm exchanges bigger.")
}

// Quickstart: bring up the simulated study environment, resolve the same
// name over classic UDP, DNS-over-TLS and DNS-over-HTTPS, and compare
// latency and wire cost — the paper's whole story in thirty lines.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"dohcost"
)

func main() {
	env, err := dohcost.NewEnvironment(dohcost.EnvironmentConfig{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	defer env.Close()

	var last dohcost.Cost
	rec := dohcost.CostFunc(func(c dohcost.Cost) { last = c })

	udp, err := env.UDP(dohcost.Cloudflare, dohcost.Options{Recorder: rec})
	if err != nil {
		log.Fatal(err)
	}
	dot, err := env.DoT(dohcost.Cloudflare, dohcost.Options{Persistent: true, Recorder: rec})
	if err != nil {
		log.Fatal(err)
	}
	doh, err := env.DoH(dohcost.Cloudflare, dohcost.Options{Persistent: true, Recorder: rec})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("resolving www.example.com over three transports (twice each):")
	fmt.Println()
	for _, c := range []struct {
		name string
		r    dohcost.Resolver
	}{{"udp", udp}, {"dot", dot}, {"doh/h2", doh}} {
		for i := 0; i < 2; i++ {
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			start := time.Now()
			resp, err := c.r.Exchange(ctx, dohcost.NewQuery("www.example.com", dohcost.TypeA))
			cancel()
			if err != nil {
				log.Fatalf("%s: %v", c.name, err)
			}
			fmt.Printf("%-7s query %d: %-14v  %-28s answer %v\n",
				c.name, i+1, time.Since(start).Round(10*time.Microsecond),
				last.WireCost(), resp.Answers[0].Data)
		}
		c.r.Close()
		fmt.Println()
	}
	fmt.Println("note how the first DoT/DoH exchange pays the TCP+TLS setup and the")
	fmt.Println("second rides the warm connection — the amortization behind Figure 3.")
}

// Head-of-line blocking demo: a compressed rerun of the paper's Figure 2.
// One in every ten queries is stalled 300 ms at the resolver; watch how the
// stall propagates to innocent queries on DoT and pipelined HTTP/1.1 but
// not on UDP or HTTP/2.
package main

import (
	"fmt"
	"log"
	"time"

	"dohcost"
	"dohcost/internal/core"
)

func main() {
	fmt.Println("running a scaled-down Figure 2 (40 queries at 20 qps, 1-in-10 delayed 300ms)…")
	fmt.Println()
	res, err := dohcost.RunFigure2(core.Fig2Config{
		Queries:    40,
		Rate:       20,
		DelayEvery: 10,
		Delay:      300 * time.Millisecond,
		Seed:       7,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(dohcost.RenderFigure2(res))

	fmt.Println()
	injected := 40 / 10
	fmt.Printf("injected slow queries per run: %d\n", injected)
	for _, tr := range core.Fig2Transports {
		slow := core.KnockOnCount(res.Delayed[tr], 150*time.Millisecond)
		verdict := "no knock-on (independent exchanges)"
		if slow > injected {
			verdict = fmt.Sprintf("knock-on! %d extra queries caught behind the stalls", slow-injected)
		}
		fmt.Printf("  %-6s %2d slow -> %s\n", tr, slow, verdict)
	}
}

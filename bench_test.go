// Benchmarks regenerating every table and figure of the paper (scaled to
// bench-friendly sizes — the cmd tools run full scale), plus ablations of
// the design choices DESIGN.md calls out and micro-benchmarks of the
// substrate hot paths. Custom metrics carry the paper's units: bytes and
// packets per resolution, milliseconds of resolution/page-load time.
package dohcost

import (
	"context"
	"fmt"
	"math/rand"
	"net"
	"net/netip"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dohcost/internal/alexa"
	"dohcost/internal/core"
	"dohcost/internal/dialer"
	"dohcost/internal/dnscache"
	"dohcost/internal/dnsserver"
	"dohcost/internal/dnstransport"
	"dohcost/internal/dnswire"
	"dohcost/internal/guard"
	"dohcost/internal/hpack"
	"dohcost/internal/landscape"
	"dohcost/internal/loadgen"
	"dohcost/internal/netsim"
	"dohcost/internal/proxy"
	"dohcost/internal/qtrace"
	"dohcost/internal/stats"
	"dohcost/internal/steer"
	"dohcost/internal/telemetry"
	"dohcost/internal/udpio"
)

var mustAddrBench = netip.MustParseAddr("192.0.2.99")

// --- Figure 1 -----------------------------------------------------------

func BenchmarkFig1QueriesPerPage(b *testing.B) {
	var median float64
	for i := 0; i < b.N; i++ {
		r := core.RunFig1(core.Fig1Config{Pages: 10000, Seed: int64(i)})
		median = r.CDF.Quantile(0.5)
	}
	b.ReportMetric(median, "queries/page-median")
}

// --- Tables 1 & 2 -------------------------------------------------------

func BenchmarkTable2Probe(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := core.RunTables(int64(i))
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Diffs) != 0 {
			b.Fatalf("probe mismatches: %v", res.Diffs)
		}
	}
}

// --- Figure 2 -----------------------------------------------------------

func benchmarkFig2(b *testing.B, transport string) {
	cfg := core.Fig2Config{
		Queries: 25, Rate: 50, DelayEvery: 10, Delay: 200 * time.Millisecond,
		Seed: 42, Transports: []string{transport},
	}
	var knockOn int
	for i := 0; i < b.N; i++ {
		res, err := core.RunFig2(cfg)
		if err != nil {
			b.Fatal(err)
		}
		knockOn = core.KnockOnCount(res.Delayed[transport], cfg.Delay/2)
	}
	b.ReportMetric(float64(knockOn), "slow-queries")
}

func BenchmarkFig2HOLBlockingUDP(b *testing.B)   { benchmarkFig2(b, "udp") }
func BenchmarkFig2HOLBlockingDoT(b *testing.B)   { benchmarkFig2(b, "tls") }
func BenchmarkFig2HOLBlockingHTTP1(b *testing.B) { benchmarkFig2(b, "http1") }
func BenchmarkFig2HOLBlockingHTTP2(b *testing.B) { benchmarkFig2(b, "http2") }

// --- Figures 3, 4, 5 ----------------------------------------------------

func benchmarkOverheadScenario(b *testing.B, scenario string) {
	var bytesMed, pktMed float64
	for i := 0; i < b.N; i++ {
		res, err := core.RunOverhead(core.OverheadConfig{Domains: 30, Seed: 42})
		if err != nil {
			b.Fatal(err)
		}
		s := res.Scenario(scenario)
		bytesMed = stats.NewCDF(s.Bytes()).Quantile(0.5)
		pktMed = stats.NewCDF(s.Packets()).Quantile(0.5)
	}
	b.ReportMetric(bytesMed, "B/resolution")
	b.ReportMetric(pktMed, "pkts/resolution")
}

func BenchmarkFig3BytesPerResolution(b *testing.B)   { benchmarkOverheadScenario(b, "H/CF") }
func BenchmarkFig4PacketsPerResolution(b *testing.B) { benchmarkOverheadScenario(b, "HP/CF") }

func BenchmarkFig5LayerBreakdown(b *testing.B) {
	var tlsMed float64
	for i := 0; i < b.N; i++ {
		res, err := core.RunOverhead(core.OverheadConfig{Domains: 30, Seed: 42})
		if err != nil {
			b.Fatal(err)
		}
		var tlsBytes []float64
		for _, bd := range res.Scenario("H/CF").Breakdowns() {
			tlsBytes = append(tlsBytes, float64(bd.TLS))
		}
		tlsMed = stats.NewCDF(tlsBytes).Quantile(0.5)
	}
	b.ReportMetric(tlsMed, "TLS-B/resolution")
}

// --- Figure 6 -----------------------------------------------------------

func BenchmarkFig6PageLoad(b *testing.B) {
	var dohOverUDP float64
	for i := 0; i < b.N; i++ {
		res, err := core.RunFig6(core.Fig6Config{Pages: 8, Loads: 1, Seed: 42, Workers: 8})
		if err != nil {
			b.Fatal(err)
		}
		udp := stats.NewCDF(res.Series("U/CF").Loadms).Quantile(0.5)
		doh := stats.NewCDF(res.Series("H/CF").Loadms).Quantile(0.5)
		dohOverUDP = doh / udp
	}
	b.ReportMetric(dohOverUDP, "onload-DoH/UDP")
}

// --- Ablations ----------------------------------------------------------

// BenchmarkAblationDoTOutOfOrder quantifies how much of DoT's Figure 2
// penalty is reply scheduling rather than protocol: the same stalled-query
// workload against an in-order and a Cloudflare-style out-of-order server.
// Compare the fast-ms/query metric between the two sub-benchmarks.
func BenchmarkAblationDoTOutOfOrder(b *testing.B) {
	const stall = 60 * time.Millisecond
	handler := dnsserver.HandlerFunc(func(ctx context.Context, q *dnswire.Message) (*dnswire.Message, error) {
		if strings.HasPrefix(string(q.Question1().Name), "slow") {
			time.Sleep(stall)
		}
		return dnsserver.Static(mustAddrBench, 300).ServeDNS(ctx, q)
	})
	for _, mode := range []struct {
		name string
		ooo  bool
	}{{"in-order", false}, {"out-of-order", true}} {
		b.Run(mode.name, func(b *testing.B) {
			var fastMS float64
			for i := 0; i < b.N; i++ {
				topo, err := core.NewTopology(core.TopologyConfig{
					Seed: 42, Handler: handler, DoTOutOfOrder: mode.ooo,
					LocalRTT: 200 * time.Microsecond, CFRTT: 200 * time.Microsecond, GORTT: 200 * time.Microsecond,
				})
				if err != nil {
					b.Fatal(err)
				}
				r, err := topo.DoTResolver(core.ClientHost, core.CFHost)
				if err != nil {
					topo.Close()
					b.Fatal(err)
				}
				// Warm the connection, then stall one query and race a
				// fast one behind it.
				ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
				if _, err := r.Exchange(ctx, dnswire.NewQuery(0, "warm.example.", dnswire.TypeA)); err != nil {
					b.Fatal(err)
				}
				cancel()
				done := make(chan struct{})
				go func() {
					defer close(done)
					ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
					defer cancel()
					r.Exchange(ctx, dnswire.NewQuery(0, "slow.example.", dnswire.TypeA))
				}()
				time.Sleep(5 * time.Millisecond)
				ctx, cancel = context.WithTimeout(context.Background(), 10*time.Second)
				start := time.Now()
				if _, err := r.Exchange(ctx, dnswire.NewQuery(0, "fast.example.", dnswire.TypeA)); err != nil {
					b.Fatal(err)
				}
				cancel()
				fastMS = float64(time.Since(start)) / float64(time.Millisecond)
				<-done
				r.Close()
				topo.Close()
			}
			b.ReportMetric(fastMS, "fast-ms/query")
		})
	}
}

// BenchmarkAblationHPACKStaticOnly isolates the differential-header saving
// of Figure 5: repeated DoH-style header blocks with and without the
// dynamic table.
func BenchmarkAblationHPACKStaticOnly(b *testing.B) {
	fields := []hpack.HeaderField{
		{Name: ":method", Value: "POST"},
		{Name: ":scheme", Value: "https"},
		{Name: ":authority", Value: "cloudflare-dns.com"},
		{Name: ":path", Value: "/dns-query"},
		{Name: "content-type", Value: "application/dns-message"},
		{Name: "accept", Value: "application/dns-message"},
		{Name: "content-length", Value: "33"},
	}
	measure := func(disableDynamic bool) int {
		e := hpack.NewEncoder()
		e.DisableDynamic = disableDynamic
		total := 0
		for i := 0; i < 20; i++ {
			total += len(e.AppendEncode(nil, fields))
		}
		return total / 20
	}
	var dyn, static int
	for i := 0; i < b.N; i++ {
		dyn = measure(false)
		static = measure(true)
	}
	b.ReportMetric(float64(dyn), "B/hdr-dynamic")
	b.ReportMetric(float64(static), "B/hdr-static")
}

// BenchmarkAblationConnectionReuse traces the amortization curve behind
// Figures 3–5: mean per-resolution bytes at increasing reuse counts.
func BenchmarkAblationConnectionReuse(b *testing.B) {
	for _, reuse := range []int{1, 5, 20, 50} {
		b.Run(formatReuse(reuse), func(b *testing.B) {
			var mean float64
			for i := 0; i < b.N; i++ {
				topo, err := core.NewTopology(core.TopologyConfig{Seed: 42})
				if err != nil {
					b.Fatal(err)
				}
				var costs []dnstransport.Cost
				doh, err := topo.DoHResolver(core.ClientHost, core.CFHost, dnstransport.ModeH2, true)
				if err != nil {
					topo.Close()
					b.Fatal(err)
				}
				doh.Recorder = dnstransport.CostFunc(func(c dnstransport.Cost) { costs = append(costs, c) })
				for q := 0; q < reuse; q++ {
					query := dnswire.NewQuery(0, dnswire.Name(domainN(q)), dnswire.TypeA)
					ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
					if _, err := doh.Exchange(ctx, query); err != nil {
						b.Fatal(err)
					}
					cancel()
				}
				var total int64
				for _, c := range costs {
					total += c.WireCost().Bytes
				}
				mean = float64(total) / float64(reuse)
				doh.Close()
				topo.Close()
			}
			b.ReportMetric(mean, "B/resolution-mean")
		})
	}
}

// BenchmarkAblationCertChainSize reproduces the Cloudflare-vs-Google gap as
// a pure function of chain bytes: per-connection setup cost against both
// deployments.
func BenchmarkAblationCertChainSize(b *testing.B) {
	for _, host := range []string{core.CFHost, core.GOHost} {
		b.Run(host, func(b *testing.B) {
			topo, err := core.NewTopology(core.TopologyConfig{Seed: 42})
			if err != nil {
				b.Fatal(err)
			}
			defer topo.Close()
			var setupBytes float64
			for i := 0; i < b.N; i++ {
				var cost dnstransport.Cost
				doh, err := topo.DoHResolver(core.ClientHost, host, dnstransport.ModeH2, false)
				if err != nil {
					b.Fatal(err)
				}
				doh.Recorder = dnstransport.CostFunc(func(c dnstransport.Cost) { cost = c })
				q := dnswire.NewQuery(0, "chain.ablation.example.", dnswire.TypeA)
				ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
				if _, err := doh.Exchange(ctx, q); err != nil {
					b.Fatal(err)
				}
				cancel()
				doh.Close()
				setupBytes = float64(cost.WireCost().Bytes)
			}
			b.ReportMetric(setupBytes, "B/setup-resolution")
		})
	}
}

// BenchmarkAblationGETvsPOST compares RFC 8484's two wireformat encodings.
func BenchmarkAblationGETvsPOST(b *testing.B) {
	encodings := map[string]dnstransport.DoHEncoding{
		"POST": dnstransport.EncodingPOST,
		"GET":  dnstransport.EncodingGET,
	}
	for name, enc := range encodings {
		b.Run(name, func(b *testing.B) {
			topo, err := core.NewTopology(core.TopologyConfig{Seed: 42})
			if err != nil {
				b.Fatal(err)
			}
			defer topo.Close()
			doh, err := topo.DoHResolver(core.ClientHost, core.CFHost, dnstransport.ModeH2, true)
			if err != nil {
				b.Fatal(err)
			}
			defer doh.Close()
			doh.Encoding = enc
			var costs []dnstransport.Cost
			doh.Recorder = dnstransport.CostFunc(func(c dnstransport.Cost) { costs = append(costs, c) })
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				q := dnswire.NewQuery(0, dnswire.Name(domainN(i)), dnswire.TypeA)
				ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
				if _, err := doh.Exchange(ctx, q); err != nil {
					b.Fatal(err)
				}
				cancel()
			}
			b.StopTimer()
			if len(costs) > 1 {
				var total int64
				for _, c := range costs[1:] { // skip the setup exchange
					total += c.WireCost().Bytes
				}
				b.ReportMetric(float64(total)/float64(len(costs)-1), "B/resolution-steady")
			}
		})
	}
}

// BenchmarkAblationSessionResumption measures what TLS 1.3 session tickets
// recover of the non-persistent DoH overhead: the second connection's setup
// resolution with and without a client session cache.
func BenchmarkAblationSessionResumption(b *testing.B) {
	for _, resume := range []bool{false, true} {
		name := "full-handshake"
		if resume {
			name = "resumed"
		}
		b.Run(name, func(b *testing.B) {
			topo, err := core.NewTopology(core.TopologyConfig{Seed: 42})
			if err != nil {
				b.Fatal(err)
			}
			defer topo.Close()
			var secondConnBytes float64
			for i := 0; i < b.N; i++ {
				var costs []dnstransport.Cost
				doh, err := topo.DoHResolver(core.ClientHost, core.CFHost, dnstransport.ModeH2, false)
				if err != nil {
					b.Fatal(err)
				}
				doh.ResumeSessions = resume
				doh.Recorder = dnstransport.CostFunc(func(c dnstransport.Cost) { costs = append(costs, c) })
				for q := 0; q < 2; q++ { // first primes the ticket, second resumes
					query := dnswire.NewQuery(0, dnswire.Name(domainN(q)), dnswire.TypeA)
					ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
					if _, err := doh.Exchange(ctx, query); err != nil {
						b.Fatal(err)
					}
					cancel()
				}
				doh.Close()
				secondConnBytes = float64(costs[1].WireCost().Bytes)
			}
			b.ReportMetric(secondConnBytes, "B/second-connection")
		})
	}
}

// BenchmarkAblationWarmCache shows how a stub cache erases repeat-query
// cost entirely: resolution bytes for a Zipf-popular name with and without
// dnscache in front of DoH.
func BenchmarkAblationWarmCache(b *testing.B) {
	topo, err := core.NewTopology(core.TopologyConfig{Seed: 42})
	if err != nil {
		b.Fatal(err)
	}
	defer topo.Close()
	doh, err := topo.DoHResolver(core.ClientHost, core.CFHost, dnstransport.ModeH2, true)
	if err != nil {
		b.Fatal(err)
	}
	var total int64
	doh.Recorder = dnstransport.CostFunc(func(c dnstransport.Cost) { total += c.WireCost().Bytes })
	cached := dnscache.New(doh)
	defer cached.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := dnswire.NewQuery(0, "ads0.thirdparty.example.", dnswire.TypeA)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		if _, err := cached.Exchange(ctx, q); err != nil {
			b.Fatal(err)
		}
		cancel()
	}
	b.StopTimer()
	stats := cached.Stats()
	b.ReportMetric(float64(total)/float64(b.N), "upstream-B/query")
	b.ReportMetric(float64(stats.Hits)/float64(stats.Hits+stats.Misses)*100, "hit-%")
}

// --- Forwarding proxy ---------------------------------------------------

// BenchmarkProxyThroughput drives a Zipf-ish workload through the full
// forwarding proxy (client → UDP listener → sharded cache → singleflight →
// pooled TCP upstream) and reports end-to-end queries/sec.
func BenchmarkProxyThroughput(b *testing.B) {
	n := netsim.New(42)
	upSrv := &dnsserver.Server{Handler: dnsserver.Static(mustAddrBench, 300)}
	upRun, err := upSrv.Start(n, "recursive.upstream")
	if err != nil {
		b.Fatal(err)
	}
	defer upRun.Close()

	p, err := proxy.New(proxy.Config{
		Upstreams: []dnstransport.PoolUpstream{{
			Name: "recursive.upstream",
			Dial: func(ctx context.Context) (dnstransport.Resolver, error) {
				return dnstransport.NewTCPClient(func(ctx context.Context) (net.Conn, error) {
					return n.DialContext(ctx, "proxy.dns", "recursive.upstream:53")
				}), nil
			},
		}},
		Pool: dnstransport.PoolConfig{ConnsPerUpstream: 4},
	})
	if err != nil {
		b.Fatal(err)
	}
	defer p.Close()
	if err := p.Start(n, "proxy.dns"); err != nil {
		b.Fatal(err)
	}

	pc, err := n.ListenPacket("")
	if err != nil {
		b.Fatal(err)
	}
	client := dnstransport.NewUDPClient(pc, netsim.Addr("proxy.dns:53"))
	client.Timeout = 10 * time.Second
	defer client.Close()

	var i atomic.Int64
	b.ResetTimer()
	start := time.Now()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			// 64 distinct names: first touches miss to the upstream pool,
			// the rest ride the cache.
			name := dnswire.Name(fmt.Sprintf("host%02d.bench.example.", i.Add(1)%64))
			q := dnswire.NewQuery(0, name, dnswire.TypeA)
			if _, err := client.Exchange(context.Background(), q); err != nil {
				b.Error(err)
				return
			}
		}
	})
	elapsed := time.Since(start)
	b.StopTimer()
	b.ReportMetric(float64(b.N)/elapsed.Seconds(), "queries/s")
	s := p.CacheStats()
	if total := s.Hits + s.Misses + s.Coalesced; total > 0 {
		b.ReportMetric(float64(s.Hits)/float64(total)*100, "hit-%")
	}
}

// BenchmarkUDPBatchServe compares the two UDP cache-hit serving loops on
// real kernel sockets under concurrent client load:
//
//   - per-packet: one ReadFrom and one WriteTo syscall per datagram
//     (UDPServer.Serve), the pre-batching baseline.
//   - batch: SO_REUSEPORT shard sockets each draining up to 32 datagrams
//     per recvmmsg and flushing every hit in one sendmmsg
//     (UDPServer.ServeBatch over udpio.ListenShards).
//
// Every query is a cache hit on the proxy's wire fast path, so the gap is
// purely syscall amortization — the batch variant's queries/s should hold
// a ≥2x advantage under load; the bench CI job tracks it across commits.
// On platforms without kernel batch support the batch variant degrades to
// the portable fallback and the two converge.
func BenchmarkUDPBatchServe(b *testing.B) {
	p, err := proxy.New(proxy.Config{
		Upstreams: []dnstransport.PoolUpstream{{
			Name: "static.upstream",
			Dial: func(ctx context.Context) (dnstransport.Resolver, error) { return staticResolver{}, nil },
		}},
	})
	if err != nil {
		b.Fatal(err)
	}
	defer p.Close()
	handler := p.Handler()
	// Prime the cache so every benchmarked query rides the wire fast path.
	if _, err := handler.ServeDNS(context.Background(), dnswire.NewQuery(0, "hot.bench.example.", dnswire.TypeA)); err != nil {
		b.Fatal(err)
	}
	queryWire, err := dnswire.NewQuery(4242, "hot.bench.example.", dnswire.TypeA).Pack()
	if err != nil {
		b.Fatal(err)
	}

	// hammer drives count queries through one client socket with a send
	// window, re-sending on read timeout (UDP drops under buffer pressure
	// are expected and must not stall the pipeline). The client uses
	// batched I/O itself — identically against both server variants — so
	// the measured difference is the server's serving loop, not the
	// harness's own syscall ceiling.
	hammer := func(addr string, count int) error {
		pc, err := net.ListenPacket("udp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		c := udpio.Wrap(pc)
		defer c.Close()
		dst, err := net.ResolveUDPAddr("udp", addr)
		if err != nil {
			return err
		}
		const window = 32
		out := make([]udpio.Message, window)
		for i := range out {
			out[i] = udpio.Message{Buf: queryWire, N: len(queryWire), Addr: dst}
		}
		in := make([]udpio.Message, window)
		for i := range in {
			in[i].Buf = make([]byte, 2048)
		}
		sent, received, outstanding := 0, 0, 0
		for received < count {
			if k := min(window-outstanding, count-sent); k > 0 {
				if _, err := c.WriteBatch(out[:k]); err != nil {
					return err
				}
				sent += k
				outstanding += k
			}
			c.SetReadDeadline(time.Now().Add(250 * time.Millisecond))
			n, err := c.ReadBatch(in)
			if err != nil {
				sent -= outstanding // window lost: back up and resend
				outstanding = 0
				continue
			}
			received += n
			outstanding = max(0, outstanding-n)
		}
		return nil
	}

	run := func(b *testing.B, addr string) {
		clients := 8
		if clients > b.N {
			clients = 1
		}
		var wg sync.WaitGroup
		errs := make(chan error, clients)
		b.ResetTimer()
		start := time.Now()
		for g := 0; g < clients; g++ {
			count := b.N / clients
			if g < b.N%clients {
				count++
			}
			wg.Add(1)
			go func(count int) {
				defer wg.Done()
				if err := hammer(addr, count); err != nil {
					errs <- err
				}
			}(count)
		}
		wg.Wait()
		elapsed := time.Since(start)
		b.StopTimer()
		close(errs)
		for err := range errs {
			b.Fatal(err)
		}
		b.ReportMetric(float64(b.N)/elapsed.Seconds(), "queries/s")
	}

	b.Run("per-packet", func(b *testing.B) {
		pc, err := net.ListenPacket("udp", "127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		defer pc.Close()
		srv := &dnsserver.UDPServer{Handler: handler}
		go srv.Serve(pc)
		run(b, pc.LocalAddr().String())
	})

	b.Run("batch", func(b *testing.B) {
		conns, err := udpio.ListenShards("udp", "127.0.0.1:0", 0)
		if err != nil {
			b.Fatal(err)
		}
		defer func() {
			for _, c := range conns {
				c.Close()
			}
		}()
		srv := &dnsserver.UDPServer{Handler: handler}
		go srv.ServeBatch(conns, 32)
		run(b, conns[0].LocalAddr().String())
	})
}

// BenchmarkCacheHitPathShardedVsMutex isolates the cache's hot path under
// contention: 8+ goroutines hammering cached names, against the classic
// single-mutex layout (shards=1) and the sharded default. The sharded
// variant's queries/s should be ≥2× the mutex variant's on any multicore
// machine — the motivation for hash-partitioning the cache. The third
// case runs the sharded layout with the full telemetry lifecycle per
// query (Begin → cache annotation → verdict → Finish, the proxy serving
// path's accounting) and should stay within noise of the bare sharded
// numbers — the telemetry subsystem's no-lock-contention contract.
func BenchmarkCacheHitPathShardedVsMutex(b *testing.B) {
	for _, tt := range []struct {
		name      string
		shards    int
		telemetry bool
	}{{"mutex-1shard", 1, false}, {"sharded-16", 16, false}, {"sharded-16-telemetry", 16, true}} {
		b.Run(tt.name, func(b *testing.B) {
			upstream := &staticResolver{}
			c := dnscache.New(upstream, dnscache.WithShards(tt.shards))
			defer c.Close()
			var tel *telemetry.Metrics
			if tt.telemetry {
				tel = telemetry.New()
			}
			// Prefill the hot set so the benchmark measures pure hits.
			const hot = 64
			queries := make([]*dnswire.Message, hot)
			for i := range queries {
				queries[i] = dnswire.NewQuery(0, dnswire.Name(fmt.Sprintf("hot%02d.bench.example.", i)), dnswire.TypeA)
				if _, err := c.Exchange(context.Background(), queries[i]); err != nil {
					b.Fatal(err)
				}
			}
			b.SetParallelism(8) // ≥ 8 goroutines even on small GOMAXPROCS
			b.ResetTimer()
			start := time.Now()
			b.RunParallel(func(pb *testing.PB) {
				var i int
				for pb.Next() {
					ctx := context.Background()
					tx := tel.Begin(telemetry.ProtoUDP) // nil tel → nil tx → no-ops
					ctx = telemetry.NewContext(ctx, tx)
					if _, err := c.Exchange(ctx, queries[i%hot]); err != nil {
						b.Error(err)
						return
					}
					tx.SetVerdict(telemetry.VerdictOK)
					tx.Finish()
					i++
				}
			})
			b.ReportMetric(float64(b.N)/time.Since(start).Seconds(), "queries/s")
			if tel != nil {
				if got := tel.Snapshot().Queries["udp"]; got != uint64(b.N) {
					b.Fatalf("telemetry lost queries: %d recorded, %d run", got, b.N)
				}
			}
		})
	}
}

// BenchmarkCacheHitWirePath compares the two cache-hit serving pipelines
// head to head, each mirroring what the UDP server runs per datagram:
//
//   - wire-path (the default): dnswire.ParseQuery on the packet, a
//     telemetry transaction, and Cache.ServeWire copying the stored packed
//     response into a reusable buffer with ID and TTLs patched in place.
//     No Message is built; the loop should report ~0 allocs/op.
//   - message-path (the pre-wire-path behaviour, kept benchmarkable behind
//     dnscache.WithMessageEntries): Message.Unpack of the query, a
//     Cache.Exchange hit served by deep clone, and Message.Pack of the
//     response.
//
// The wire path must hold a ≥2x ns/op advantage and ≤2 allocs/op; the
// bench CI job tracks both across commits.
func BenchmarkCacheHitWirePath(b *testing.B) {
	queryWire, err := dnswire.NewQuery(4242, "hot00.bench.example.", dnswire.TypeA).Pack()
	if err != nil {
		b.Fatal(err)
	}
	prime := func(b *testing.B, c *dnscache.Cache) {
		b.Helper()
		if _, err := c.Exchange(context.Background(), dnswire.NewQuery(0, "hot00.bench.example.", dnswire.TypeA)); err != nil {
			b.Fatal(err)
		}
	}

	b.Run("wire-path", func(b *testing.B) {
		c := dnscache.New(staticResolver{})
		defer c.Close()
		prime(b, c)
		tel := telemetry.New()
		dst := make([]byte, 0, 4096)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			q, ok := dnswire.ParseQuery(queryWire)
			if !ok {
				b.Fatal("fast parse failed")
			}
			tx := tel.Begin(telemetry.ProtoUDP)
			resp, outcome, ok := c.ServeWire(tx, &q, dst[:0], 4096)
			if !ok {
				b.Fatal("wire hit lost")
			}
			tx.SetCache(outcome)
			tx.SetVerdict(telemetry.VerdictOK)
			tx.Finish()
			_ = resp
		}
	})

	// The guarded variant prepends exactly what the UDP server does when a
	// guard is armed — one CheckUDP on the allow path — so the delta
	// against wire-path is the guard's whole per-packet cost. The
	// acceptance bound is <5%.
	b.Run("wire-path-guarded", func(b *testing.B) {
		c := dnscache.New(staticResolver{})
		defer c.Close()
		prime(b, c)
		tel := telemetry.New()
		g := guard.New(guard.Config{ClientQPS: 1e9, Burst: 1 << 30, CookieSecret: 1}, tel)
		key := guard.ClientKey(&net.UDPAddr{IP: net.IPv4(192, 0, 2, 7), Port: 53000})
		dst := make([]byte, 0, 4096)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if g.CheckUDP(key, queryWire) != guard.ActionAllow {
				b.Fatal("allow path denied")
			}
			q, ok := dnswire.ParseQuery(queryWire)
			if !ok {
				b.Fatal("fast parse failed")
			}
			tx := tel.Begin(telemetry.ProtoUDP)
			resp, outcome, ok := c.ServeWire(tx, &q, dst[:0], 4096)
			if !ok {
				b.Fatal("wire hit lost")
			}
			tx.SetCache(outcome)
			tx.SetVerdict(telemetry.VerdictOK)
			tx.Finish()
			_ = resp
		}
	})

	b.Run("message-path", func(b *testing.B) {
		c := dnscache.New(staticResolver{}, dnscache.WithMessageEntries())
		defer c.Close()
		prime(b, c)
		tel := telemetry.New()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			var q dnswire.Message
			if err := q.Unpack(queryWire); err != nil {
				b.Fatal(err)
			}
			tx := tel.Begin(telemetry.ProtoUDP)
			ctx := telemetry.NewContext(context.Background(), tx)
			resp, err := c.Exchange(ctx, &q)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := resp.Pack(); err != nil {
				b.Fatal(err)
			}
			tx.SetVerdict(telemetry.VerdictOK)
			tx.Finish()
		}
	})
}

// BenchmarkWireHitTraced is the tracing regression gate: the wire-hit
// fast path with a tracer installed and baseline sampling active (every
// 16th hit acquires a record, fills parse/cache spans, captures the
// qname and goes through the tail sampler) must still report 0
// allocs/op. The loop mirrors the UDP server's traced per-datagram
// shape, extra time.Now reads included.
func BenchmarkWireHitTraced(b *testing.B) {
	queryWire, err := dnswire.NewQuery(4242, "hot00.bench.example.", dnswire.TypeA).Pack()
	if err != nil {
		b.Fatal(err)
	}
	c := dnscache.New(staticResolver{})
	defer c.Close()
	if _, err := c.Exchange(context.Background(), dnswire.NewQuery(0, "hot00.bench.example.", dnswire.TypeA)); err != nil {
		b.Fatal(err)
	}
	tel := telemetry.New()
	tr := qtrace.New(qtrace.Config{SampleEvery: 16})
	defer tr.Close()
	tel.SetTracer(tr)
	dst := make([]byte, 0, 4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tParse := time.Now()
		q, ok := dnswire.ParseQuery(queryWire)
		if !ok {
			b.Fatal("fast parse failed")
		}
		tx := tel.Begin(telemetry.ProtoUDP)
		if tx.Traced() {
			tx.TraceSpanBetween(qtrace.PhaseParse, tParse, time.Now())
			tx.TraceQuery(&q)
		}
		tc := tx.TraceStart()
		resp, outcome, ok := c.ServeWire(tx, &q, dst[:0], 4096)
		if !ok {
			b.Fatal("wire hit lost")
		}
		tx.TraceSpan(qtrace.PhaseCache, tc)
		tx.SetCache(outcome)
		tx.SetVerdict(telemetry.VerdictOK)
		tx.Finish()
		_ = resp
	}
	b.StopTimer()
	if st := tr.Stats(); st.Offered != uint64(b.N) {
		b.Fatalf("tracer offered %d records for %d queries", st.Offered, b.N)
	}
}

// BenchmarkArenaHitPath measures the zero-alloc wire hit against
// arena-packed storage in its steady production state: a byte-budgeted
// cache whose arena has already been through churn-forced epoch rotations
// (compacted slabs, recycled free list), serving a rotating hot set. The
// allocs/op column is the regression gate — the arena rebuild must keep
// the hit path at zero.
func BenchmarkArenaHitPath(b *testing.B) {
	c := dnscache.New(staticResolver{}, dnscache.WithMemoryBudget(256<<10))
	defer c.Close()
	ctx := context.Background()

	const hotNames = 64
	queries := make([]dnswire.Query, hotNames)
	for i := 0; i < hotNames; i++ {
		name := dnswire.Name(fmt.Sprintf("hot%02d.bench.example.", i))
		if _, err := c.Exchange(ctx, dnswire.NewQuery(0, name, dnswire.TypeA)); err != nil {
			b.Fatal(err)
		}
		wire, err := dnswire.NewQuery(uint16(i), name, dnswire.TypeA).Pack()
		if err != nil {
			b.Fatal(err)
		}
		q, ok := dnswire.ParseQuery(wire)
		if !ok {
			b.Fatal("fast parse failed")
		}
		queries[i] = q
	}
	// Churn until the arenas have rotated: the measured hits then read
	// compacted blocks in recycled slabs, not pristine first-epoch ones.
	for i := 0; c.Stats().ArenaEpochs < 4; i++ {
		if _, err := c.Exchange(ctx, dnswire.NewQuery(0, dnswire.Name(fmt.Sprintf("churn%d.bench.example.", i)), dnswire.TypeA)); err != nil {
			b.Fatal(err)
		}
	}
	for i := range queries { // re-prime anything the churn evicted
		if _, err := c.Exchange(ctx, dnswire.NewQuery(0, dnswire.Name(fmt.Sprintf("hot%02d.bench.example.", i)), dnswire.TypeA)); err != nil {
			b.Fatal(err)
		}
	}

	dst := make([]byte, 0, 4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, ok := c.ServeWire(nil, &queries[i%hotNames], dst[:0], 4096); !ok {
			b.Fatal("arena hit lost")
		}
	}
}

// BenchmarkCacheZipfAdmission replays the paper-scale heavy-tailed
// workload — Zipf(s=1.0) ranks over a million-name universe — through a
// byte-budgeted cache, comparing plain LRU against TinyLFU admission.
// ns/op is the full Exchange round trip (hits and misses mixed at the
// policy's own ratio); the hit-ratio metric is the number the admission
// filter exists to move.
func BenchmarkCacheZipfAdmission(b *testing.B) {
	for _, mode := range []struct {
		name string
		opts []dnscache.Option
	}{
		{"lru", nil},
		{"tinylfu", []dnscache.Option{dnscache.WithTinyLFU()}},
	} {
		b.Run(mode.name, func(b *testing.B) {
			c := dnscache.New(staticResolver{}, append([]dnscache.Option{
				dnscache.WithMemoryBudget(2 << 20),
			}, mode.opts...)...)
			defer c.Close()
			z := loadgen.NewZipf(1_200_000, 1.0)
			rng := rand.New(rand.NewSource(99))
			ctx := context.Background()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				name := loadgen.ZipfName(z.Rank(rng))
				if _, err := c.Exchange(ctx, dnswire.NewQuery(uint16(i), name, dnswire.TypeA)); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			s := c.Stats()
			if total := s.Hits + s.Misses; total > 0 {
				b.ReportMetric(float64(s.Hits)/float64(total), "hit-ratio")
			}
			b.ReportMetric(float64(s.AdmissionRejects), "admission-rejects")
		})
	}
}

// BenchmarkHedgedExchange measures the steering layer's hedged policy end
// to end on the simulated network: the preferred upstream sits behind a
// 20ms (one-way) link, the runner-up behind a clean one, and a 2ms hedge
// delay races them. ns/op is dominated by the winner's round trip —
// compare against the ~40ms the degraded upstream would cost — and
// hedges/op reports how much of the traffic actually hedged once the
// model learned the primary's latency.
func BenchmarkHedgedExchange(b *testing.B) {
	n := netsim.New(42)
	for _, u := range []struct {
		host  string
		delay time.Duration
	}{{"slow.upstream", 20 * time.Millisecond}, {"fast.upstream", 50 * time.Microsecond}} {
		n.SetLink("steerer", u.host, netsim.Link{Delay: u.delay})
		srv := &dnsserver.Server{Handler: dnsserver.Static(mustAddrBench, 300)}
		run, err := srv.Start(n, u.host)
		if err != nil {
			b.Fatal(err)
		}
		defer run.Close()
	}
	mkUp := func(host string) dnstransport.PoolUpstream {
		return dnstransport.PoolUpstream{Name: host, Dial: func(ctx context.Context) (dnstransport.Resolver, error) {
			return dnstransport.NewTCPClient(func(ctx context.Context) (net.Conn, error) {
				return n.DialContext(ctx, "steerer", host+":53")
			}), nil
		}}
	}
	pool, err := dnstransport.NewPool(
		[]dnstransport.PoolUpstream{mkUp("slow.upstream"), mkUp("fast.upstream")},
		dnstransport.PoolConfig{ConnsPerUpstream: 2},
	)
	if err != nil {
		b.Fatal(err)
	}
	st := steer.New(pool, steer.Config{Policy: steer.PolicyHedged, HedgeDelay: 2 * time.Millisecond})
	defer st.Close()
	tel := telemetry.New()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tx := tel.Begin(telemetry.ProtoUDP)
		ctx := telemetry.NewContext(context.Background(), tx)
		q := dnswire.NewQuery(0, dnswire.Name(fmt.Sprintf("hedge%04d.bench.example.", i%4096)), dnswire.TypeA)
		if _, err := st.Exchange(ctx, q); err != nil {
			b.Fatal(err)
		}
		tx.SetVerdict(telemetry.VerdictOK)
		tx.Finish()
	}
	b.StopTimer()
	if s := tel.Snapshot(); b.N > 0 {
		b.ReportMetric(float64(s.HedgesFired)/float64(b.N), "hedges/op")
	}
}

// primeOnceResolver answers its first exchange (the cache prime) and then
// blocks until the caller's context ends — pinning every later lookup in
// the stale regime so BenchmarkServeStaleHit measures the stale-hit serve
// path, not a refresh storm: the first stale hit parks one background
// refresh on the blocked upstream, and the singleflight table keeps every
// subsequent hit refresh-free.
type primeOnceResolver struct{ calls atomic.Int64 }

func (r *primeOnceResolver) Exchange(ctx context.Context, q *dnswire.Message) (*dnswire.Message, error) {
	if r.calls.Add(1) > 1 {
		<-ctx.Done()
		return nil, ctx.Err()
	}
	return staticResolver{}.Exchange(ctx, q)
}

func (r *primeOnceResolver) Close() error { return nil }

// BenchmarkServeStaleHit measures the RFC 8767 stale-hit wire path: an
// expired-but-stale entry served by copy + ID patch + TTL cap while the
// (blocked) background refresh holds the singleflight slot.
func BenchmarkServeStaleHit(b *testing.B) {
	clock := time.Unix(9000, 0)
	c := dnscache.New(&primeOnceResolver{},
		dnscache.WithServeStale(time.Hour),
		dnscache.WithClock(func() time.Time { return clock }))
	defer c.Close()
	if _, err := c.Exchange(context.Background(), dnswire.NewQuery(1, "stale.bench.example.", dnswire.TypeA)); err != nil {
		b.Fatal(err)
	}
	clock = clock.Add(2 * time.Hour / 4) // past the 300s TTL, inside the stale window
	queryWire, err := dnswire.NewQuery(4242, "stale.bench.example.", dnswire.TypeA).Pack()
	if err != nil {
		b.Fatal(err)
	}
	tel := telemetry.New()
	dst := make([]byte, 0, 4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q, ok := dnswire.ParseQuery(queryWire)
		if !ok {
			b.Fatal("fast parse failed")
		}
		tx := tel.Begin(telemetry.ProtoUDP)
		resp, outcome, ok := c.ServeWire(tx, &q, dst[:0], 4096)
		if !ok {
			b.Fatal("stale hit lost")
		}
		if outcome != telemetry.CacheStaleHit {
			b.Fatalf("outcome = %v, want stale hit", outcome)
		}
		tx.SetCache(outcome)
		tx.SetVerdict(telemetry.VerdictOK)
		tx.Finish()
		_ = resp
	}
}

// staticResolver is an in-process upstream for cache micro-benchmarks.
type staticResolver struct{}

func (staticResolver) Exchange(ctx context.Context, q *dnswire.Message) (*dnswire.Message, error) {
	r := q.Reply()
	r.Answers = append(r.Answers, dnswire.ResourceRecord{
		Name: q.Question1().Name, Class: dnswire.ClassINET, TTL: 300,
		Data: &dnswire.A{Addr: mustAddrBench},
	})
	return r, nil
}

func (staticResolver) Close() error { return nil }

// --- Substrate micro-benchmarks ----------------------------------------

func BenchmarkDNSWirePack(b *testing.B) {
	q := dnswire.NewQuery(1, "www.example.com.", dnswire.TypeA)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := q.Pack(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDNSWireUnpack(b *testing.B) {
	q := dnswire.NewQuery(1, "www.example.com.", dnswire.TypeA)
	r := q.Reply()
	wire, err := r.Pack()
	if err != nil {
		b.Fatal(err)
	}
	var m dnswire.Message
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := m.Unpack(wire); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGuardAllowPath measures the abuse guard's per-packet cost on
// the path every honest datagram pays: one CheckUDP that parses nothing
// beyond the question bounds, takes one striped lock, and refills one
// token bucket slot. The allocs/op column is the regression gate — the
// allow path must stay at zero, with a live telemetry sink attached.
func BenchmarkGuardAllowPath(b *testing.B) {
	tel := telemetry.New()
	queryWire, err := dnswire.NewQuery(4242, "hot00.bench.example.", dnswire.TypeA).Pack()
	if err != nil {
		b.Fatal(err)
	}
	b.Run("plain", func(b *testing.B) {
		g := guard.New(guard.Config{ClientQPS: 1e9, Burst: 1 << 30, CookieSecret: 1}, tel)
		key := guard.ClientKey(&net.UDPAddr{IP: net.IPv4(192, 0, 2, 7), Port: 53000})
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if g.CheckUDP(key, queryWire) != guard.ActionAllow {
				b.Fatal("allow path denied")
			}
		}
	})
	b.Run("parallel", func(b *testing.B) {
		g := guard.New(guard.Config{ClientQPS: 1e9, Burst: 1 << 30, CookieSecret: 1}, tel)
		b.ReportAllocs()
		var next atomic.Uint64
		b.RunParallel(func(pb *testing.PB) {
			// Each goroutine is its own client: distinct keys spread over
			// the striped shards, the production shape.
			key := guard.ClientKey(&net.UDPAddr{
				IP:   net.IPv4(192, 0, 2, byte(next.Add(1))),
				Port: 53000,
			})
			for pb.Next() {
				if g.CheckUDP(key, queryWire) != guard.ActionAllow {
					b.Fatal("allow path denied")
				}
			}
		})
	})
}

func BenchmarkHPACKEncodeDecode(b *testing.B) {
	e := hpack.NewEncoder()
	d := hpack.NewDecoder()
	fields := []hpack.HeaderField{
		{Name: ":method", Value: "POST"},
		{Name: ":path", Value: "/dns-query"},
		{Name: "content-type", Value: "application/dns-message"},
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		blk := e.AppendEncode(nil, fields)
		if _, err := d.Decode(blk); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTransportExchange(b *testing.B) {
	topo, err := core.NewTopology(core.TopologyConfig{
		Seed:     42,
		LocalRTT: 50 * time.Microsecond, CFRTT: 50 * time.Microsecond, GORTT: 50 * time.Microsecond,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer topo.Close()
	resolvers := map[string]func() (dnstransport.Resolver, error){
		"udp": func() (dnstransport.Resolver, error) { return topo.UDPResolver(core.ClientHost, core.LocalHost) },
		"dot": func() (dnstransport.Resolver, error) { return topo.DoTResolver(core.ClientHost, core.CFHost) },
		"doh": func() (dnstransport.Resolver, error) {
			return topo.DoHResolver(core.ClientHost, core.CFHost, dnstransport.ModeH2, true)
		},
	}
	for name, mk := range resolvers {
		b.Run(name, func(b *testing.B) {
			r, err := mk()
			if err != nil {
				b.Fatal(err)
			}
			defer r.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				q := dnswire.NewQuery(0, dnswire.Name(domainN(i)), dnswire.TypeA)
				ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
				if _, err := r.Exchange(ctx, q); err != nil {
					b.Fatal(err)
				}
				cancel()
			}
		})
	}
}

// BenchmarkHappyEyeballsDial measures one RFC 8305 dial race over a
// dual-homed upstream on the simulated network: resolve both families,
// race staggered attempts, first established connection wins. With both
// families healthy the preferred family connects immediately, so this is
// the dialer's fixed per-connection overhead (goroutines, timers, race
// bookkeeping) on top of a raw netsim dial.
func BenchmarkHappyEyeballsDial(b *testing.B) {
	n := netsim.New(1)
	for _, h := range []string{"v4.up", "v6.up"} {
		l, err := n.Listen(h + ":53")
		if err != nil {
			b.Fatal(err)
		}
		defer l.Close()
		go func() {
			for {
				c, err := l.Accept()
				if err != nil {
					return
				}
				c.Close()
			}
		}()
	}
	he := dialer.New(dialer.Config{
		Resolve: func(ctx context.Context, host string) ([]string, []string, error) {
			return []string{"v4." + host + ":53"}, []string{"v6." + host + ":53"}, nil
		},
		Dial: func(ctx context.Context, addr string) (net.Conn, error) {
			return n.DialContext(ctx, "client", addr)
		},
	})
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c, err := he.DialContext(ctx, "up")
		if err != nil {
			b.Fatal(err)
		}
		c.Close()
	}
}

func BenchmarkAlexaGenerate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		alexa.Generate(alexa.Config{Pages: 1000, Seed: int64(i)})
	}
}

func BenchmarkLandscapeDeploy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		n := netsim.New(int64(i))
		dep, err := landscape.Deploy(n, landscape.DefaultProviders())
		if err != nil {
			b.Fatal(err)
		}
		dep.Close()
	}
}

// --- helpers ------------------------------------------------------------

func domainN(i int) string {
	const letters = "abcdefghijklmnopqrstuvwxyz"
	buf := []byte("bench-.example.")
	buf[5] = letters[i%26]
	return string(buf[:5]) + string(letters[(i/26)%26]) + string(letters[i%26]) + ".example."
}

func formatReuse(n int) string {
	switch n {
	case 1:
		return "reuse-01"
	case 5:
		return "reuse-05"
	case 20:
		return "reuse-20"
	default:
		return "reuse-50"
	}
}

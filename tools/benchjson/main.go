// Command benchjson converts `go test -bench` text output into a JSON
// document, so the CI bench job can archive one BENCH_<sha>.json artifact
// per commit and the perf trajectory of the serving hot paths accumulates
// in a machine-readable form.
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem . | go run ./tools/benchjson -out BENCH_abc123.json
//	go run ./tools/benchjson -in bench.txt -out BENCH_abc123.json
//
// Standard columns (ns/op, B/op, allocs/op) and custom ReportMetric units
// (queries/s, hit-%, …) all land in the metrics map keyed by their unit.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Result is one benchmark line in JSON form.
type Result struct {
	// Name is the benchmark name including sub-benchmarks, without the
	// trailing -GOMAXPROCS suffix (which lands in Procs).
	Name string `json:"name"`
	// Procs is the GOMAXPROCS the benchmark ran under.
	Procs int `json:"procs"`
	// Iterations is the measured b.N.
	Iterations int64 `json:"iterations"`
	// Metrics maps unit → value: "ns/op", "B/op", "allocs/op" and any
	// custom b.ReportMetric units.
	Metrics map[string]float64 `json:"metrics"`
}

// Document is the archived artifact: environment header plus results.
type Document struct {
	// Goos/Goarch/CPU/Pkg echo the go test header lines.
	Goos    string   `json:"goos,omitempty"`
	Goarch  string   `json:"goarch,omitempty"`
	CPU     string   `json:"cpu,omitempty"`
	Pkg     string   `json:"pkg,omitempty"`
	Results []Result `json:"results"`
}

func main() {
	in := flag.String("in", "", "bench output file (default stdin)")
	out := flag.String("out", "", "JSON output file (default stdout)")
	flag.Parse()

	r := io.Reader(os.Stdin)
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r = f
	}
	doc, err := parse(r)
	if err != nil {
		fatal(err)
	}
	if len(doc.Results) == 0 {
		fatal(fmt.Errorf("no benchmark results found in input"))
	}
	w := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}

// parse consumes go test -bench output: header key: value lines, then
// result lines of the form
//
//	BenchmarkName-8   1000   1234 ns/op   12 B/op   2 allocs/op   5 custom/unit
func parse(r io.Reader) (*Document, error) {
	doc := &Document{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			doc.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			doc.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			doc.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "pkg:"):
			doc.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "Benchmark"):
			res, err := parseResult(line)
			if err != nil {
				return nil, fmt.Errorf("line %q: %w", line, err)
			}
			doc.Results = append(doc.Results, res)
		}
	}
	return doc, sc.Err()
}

func parseResult(line string) (Result, error) {
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return Result{}, fmt.Errorf("too few columns")
	}
	res := Result{Name: fields[0], Procs: 1, Metrics: map[string]float64{}}
	if i := strings.LastIndex(res.Name, "-"); i > 0 {
		if p, err := strconv.Atoi(res.Name[i+1:]); err == nil {
			res.Procs = p
			res.Name = res.Name[:i]
		}
	}
	n, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, fmt.Errorf("iterations: %w", err)
	}
	res.Iterations = n
	// The remainder alternates value / unit.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, fmt.Errorf("metric value %q: %w", fields[i], err)
		}
		res.Metrics[fields[i+1]] = v
	}
	return res, nil
}

// Command benchcmp diffs two benchjson artifacts (BENCH_<sha>.json) and
// fails when a tracked metric regresses beyond a threshold — the CI guard
// that keeps the serving hot paths from quietly slowing down between
// commits.
//
// Direction is inferred from the unit: ns/op, B/op and allocs/op are
// lower-is-better; rate units containing "/s" (queries/s) are
// higher-is-better. Other custom units (hit-%, B/resolution, …) describe
// workload shape rather than speed and are reported but never failed on.
//
// Usage:
//
//	go run ./tools/benchcmp -old BENCH_base.json -new BENCH_head.json
//	go run ./tools/benchcmp -old old.json -new new.json -max-regress 10 -bench 'UDPBatch|CacheHit'
//
// Exit status: 0 when no tracked metric regresses more than -max-regress
// percent, 1 when one does, 2 on usage or parse errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strings"
)

// Result mirrors one benchjson benchmark line.
type Result struct {
	// Name is the benchmark name including sub-benchmarks.
	Name string `json:"name"`
	// Procs is the GOMAXPROCS the benchmark ran under.
	Procs int `json:"procs"`
	// Iterations is the measured b.N.
	Iterations int64 `json:"iterations"`
	// Metrics maps unit → value.
	Metrics map[string]float64 `json:"metrics"`
}

// Document mirrors the benchjson artifact.
type Document struct {
	// Goos/Goarch/CPU/Pkg echo the go test header lines.
	Goos    string   `json:"goos,omitempty"`
	Goarch  string   `json:"goarch,omitempty"`
	CPU     string   `json:"cpu,omitempty"`
	Pkg     string   `json:"pkg,omitempty"`
	Results []Result `json:"results"`
}

func main() {
	oldPath := flag.String("old", "", "baseline benchjson artifact")
	newPath := flag.String("new", "", "candidate benchjson artifact")
	maxRegress := flag.Float64("max-regress", 10, "fail when a tracked metric regresses more than this percent")
	benchRE := flag.String("bench", "", "only compare benchmarks matching this regexp (default all)")
	flag.Parse()
	if *oldPath == "" || *newPath == "" {
		fmt.Fprintln(os.Stderr, "benchcmp: -old and -new are required")
		os.Exit(2)
	}
	var filter *regexp.Regexp
	if *benchRE != "" {
		re, err := regexp.Compile(*benchRE)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchcmp: -bench:", err)
			os.Exit(2)
		}
		filter = re
	}
	oldDoc, err := load(*oldPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcmp:", err)
		os.Exit(2)
	}
	newDoc, err := load(*newPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcmp:", err)
		os.Exit(2)
	}
	regressed := compare(os.Stdout, oldDoc, newDoc, filter, *maxRegress)
	if regressed {
		os.Exit(1)
	}
}

// load reads one benchjson artifact.
func load(path string) (*Document, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc Document
	if err := json.Unmarshal(b, &doc); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &doc, nil
}

// tracked reports whether unit is a speed metric benchcmp enforces, and
// whether lower values are better for it.
func tracked(unit string) (enforced, lowerBetter bool) {
	switch unit {
	case "ns/op", "B/op", "allocs/op":
		return true, true
	}
	if strings.Contains(unit, "/s") {
		return true, false
	}
	return false, false
}

// compare prints a row per shared benchmark metric and returns whether
// any enforced metric regressed beyond maxRegress percent.
func compare(w *os.File, oldDoc, newDoc *Document, filter *regexp.Regexp, maxRegress float64) bool {
	oldBy := make(map[string]Result, len(oldDoc.Results))
	for _, r := range oldDoc.Results {
		oldBy[r.Name] = r
	}
	regressed := false
	matched := 0
	fmt.Fprintf(w, "%-55s %-14s %14s %14s %8s\n", "benchmark", "metric", "old", "new", "delta")
	for _, nr := range newDoc.Results {
		if filter != nil && !filter.MatchString(nr.Name) {
			continue
		}
		or, ok := oldBy[nr.Name]
		if !ok {
			fmt.Fprintf(w, "%-55s %-14s %14s %14s %8s\n", nr.Name, "-", "(absent)", "-", "new")
			continue
		}
		matched++
		units := make([]string, 0, len(nr.Metrics))
		for u := range nr.Metrics {
			units = append(units, u)
		}
		sort.Strings(units)
		for _, unit := range units {
			ov, ok := or.Metrics[unit]
			if !ok || ov == 0 {
				continue
			}
			nv := nr.Metrics[unit]
			enforced, lowerBetter := tracked(unit)
			deltaPct := (nv - ov) / ov * 100
			worse := deltaPct
			if !lowerBetter {
				worse = -deltaPct
			}
			mark := ""
			if enforced && worse > maxRegress {
				mark = "  REGRESSION"
				regressed = true
			} else if !enforced {
				mark = "  (info)"
			}
			fmt.Fprintf(w, "%-55s %-14s %14.4g %14.4g %+7.1f%%%s\n", nr.Name, unit, ov, nv, deltaPct, mark)
		}
	}
	if matched == 0 {
		fmt.Fprintln(w, "benchcmp: no shared benchmarks to compare")
	}
	if regressed {
		fmt.Fprintf(w, "\nbenchcmp: FAIL — at least one metric regressed more than %.1f%%\n", maxRegress)
	} else {
		fmt.Fprintf(w, "\nbenchcmp: ok (threshold %.1f%%)\n", maxRegress)
	}
	return regressed
}

package main

import (
	"os"
	"path/filepath"
	"regexp"
	"testing"
)

func doc(results ...Result) *Document {
	return &Document{Goos: "linux", Goarch: "amd64", Results: results}
}

func res(name string, metrics map[string]float64) Result {
	return Result{Name: name, Procs: 1, Iterations: 100, Metrics: metrics}
}

// compareTo runs compare with output routed to a scratch file and returns
// whether a regression was flagged.
func compareTo(t *testing.T, oldDoc, newDoc *Document, filter string, maxRegress float64) bool {
	t.Helper()
	f, err := os.Create(filepath.Join(t.TempDir(), "out.txt"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var filterRE *regexp.Regexp
	if filter != "" {
		filterRE = regexp.MustCompile(filter)
	}
	return compare(f, oldDoc, newDoc, filterRE, maxRegress)
}

func TestNoRegression(t *testing.T) {
	oldDoc := doc(res("BenchmarkUDPBatchServe/batch", map[string]float64{"ns/op": 4700, "queries/s": 212000}))
	newDoc := doc(res("BenchmarkUDPBatchServe/batch", map[string]float64{"ns/op": 4600, "queries/s": 215000}))
	if compareTo(t, oldDoc, newDoc, "", 10) {
		t.Fatal("improvement flagged as regression")
	}
}

func TestLowerIsBetterRegression(t *testing.T) {
	oldDoc := doc(res("BenchmarkCacheHit", map[string]float64{"ns/op": 1000}))
	newDoc := doc(res("BenchmarkCacheHit", map[string]float64{"ns/op": 1200}))
	if !compareTo(t, oldDoc, newDoc, "", 10) {
		t.Fatal("20%% ns/op slowdown not flagged")
	}
}

func TestHigherIsBetterRegression(t *testing.T) {
	oldDoc := doc(res("BenchmarkUDPBatchServe/batch", map[string]float64{"queries/s": 200000}))
	newDoc := doc(res("BenchmarkUDPBatchServe/batch", map[string]float64{"queries/s": 150000}))
	if !compareTo(t, oldDoc, newDoc, "", 10) {
		t.Fatal("25%% throughput drop not flagged")
	}
}

func TestThresholdBoundary(t *testing.T) {
	oldDoc := doc(res("BenchmarkX", map[string]float64{"ns/op": 1000}))
	// Exactly at the threshold: not a regression (strictly-greater check).
	atDoc := doc(res("BenchmarkX", map[string]float64{"ns/op": 1100}))
	if compareTo(t, oldDoc, atDoc, "", 10) {
		t.Fatal("delta equal to threshold flagged")
	}
	overDoc := doc(res("BenchmarkX", map[string]float64{"ns/op": 1101}))
	if !compareTo(t, oldDoc, overDoc, "", 10) {
		t.Fatal("delta just over threshold not flagged")
	}
}

func TestInfoMetricsNeverFail(t *testing.T) {
	oldDoc := doc(res("BenchmarkResolve", map[string]float64{"hit-%": 90}))
	newDoc := doc(res("BenchmarkResolve", map[string]float64{"hit-%": 10}))
	if compareTo(t, oldDoc, newDoc, "", 10) {
		t.Fatal("informational metric failed the comparison")
	}
}

func TestFilterSkipsRegressions(t *testing.T) {
	oldDoc := doc(
		res("BenchmarkKeep", map[string]float64{"ns/op": 1000}),
		res("BenchmarkSkip", map[string]float64{"ns/op": 1000}),
	)
	newDoc := doc(
		res("BenchmarkKeep", map[string]float64{"ns/op": 1000}),
		res("BenchmarkSkip", map[string]float64{"ns/op": 5000}),
	)
	if compareTo(t, oldDoc, newDoc, "Keep", 10) {
		t.Fatal("filtered-out benchmark still failed the comparison")
	}
	if !compareTo(t, oldDoc, newDoc, "", 10) {
		t.Fatal("unfiltered comparison missed the regression")
	}
}

func TestNewBenchmarkIsNotRegression(t *testing.T) {
	oldDoc := doc()
	newDoc := doc(res("BenchmarkFresh", map[string]float64{"ns/op": 1000}))
	if compareTo(t, oldDoc, newDoc, "", 10) {
		t.Fatal("benchmark absent from baseline treated as regression")
	}
}

func TestTrackedDirections(t *testing.T) {
	cases := []struct {
		unit                  string
		enforced, lowerBetter bool
	}{
		{"ns/op", true, true},
		{"B/op", true, true},
		{"allocs/op", true, true},
		{"queries/s", true, false},
		{"MB/s", true, false},
		{"hit-%", false, false},
		{"B/resolution", false, false},
	}
	for _, c := range cases {
		enforced, lower := tracked(c.unit)
		if enforced != c.enforced || lower != c.lowerBetter {
			t.Errorf("tracked(%q) = (%v, %v), want (%v, %v)", c.unit, enforced, lower, c.enforced, c.lowerBetter)
		}
	}
}

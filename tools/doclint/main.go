// Command doclint enforces the godoc contract CI relies on: every
// exported top-level identifier in the packages it is pointed at must
// carry a doc comment, and every package must have a package comment. It
// is the dependency-free stand-in for revive's `exported` rule.
//
// Usage:
//
//	go run ./tools/doclint internal/proxy internal/dnstransport ...
//
// A grouped declaration (`const (...)` / `var (...)` / `type (...)`) is
// covered by a doc comment on the group or on the individual spec; test
// files are skipped. Exit status 1 reports every violation with its
// position.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"strings"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: doclint <package-dir>...")
		os.Exit(2)
	}
	bad := 0
	for _, dir := range os.Args[1:] {
		violations, err := lintDir(dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "doclint: %s: %v\n", dir, err)
			os.Exit(2)
		}
		for _, v := range violations {
			fmt.Println(v)
			bad++
		}
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "doclint: %d exported identifier(s) missing doc comments\n", bad)
		os.Exit(1)
	}
}

// lintDir parses one package directory (non-recursively) and reports
// undocumented exported identifiers.
func lintDir(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, pkg := range pkgs {
		hasPkgDoc := false
		for _, f := range pkg.Files {
			if f.Doc != nil {
				hasPkgDoc = true
			}
		}
		if !hasPkgDoc {
			out = append(out, fmt.Sprintf("%s: package %s has no package comment", dir, pkg.Name))
		}
		for _, f := range pkg.Files {
			out = append(out, lintFile(fset, f)...)
		}
	}
	return out, nil
}

// lintFile walks one file's top-level declarations.
func lintFile(fset *token.FileSet, f *ast.File) []string {
	var out []string
	report := func(pos token.Pos, what, ident string) {
		out = append(out, fmt.Sprintf("%s: exported %s %s has no doc comment", fset.Position(pos), what, ident))
	}
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if d.Name.IsExported() && d.Doc == nil && receiverExported(d) {
				kind := "function"
				if d.Recv != nil {
					kind = "method"
				}
				report(d.Pos(), kind, d.Name.Name)
			}
		case *ast.GenDecl:
			if d.Doc != nil {
				continue // group doc covers every spec
			}
			for _, spec := range d.Specs {
				switch s := spec.(type) {
				case *ast.TypeSpec:
					if s.Name.IsExported() && s.Doc == nil && s.Comment == nil {
						report(s.Pos(), "type", s.Name.Name)
					}
				case *ast.ValueSpec:
					if s.Doc != nil || s.Comment != nil {
						continue
					}
					for _, n := range s.Names {
						if n.IsExported() {
							report(n.Pos(), declKind(d.Tok), n.Name)
						}
					}
				}
			}
		}
	}
	return out
}

// receiverExported reports whether a method's receiver type is exported
// (methods on unexported types are not part of the documented API).
func receiverExported(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	t := d.Recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr: // generic receiver
			t = tt.X
		case *ast.Ident:
			return tt.IsExported()
		default:
			return true
		}
	}
}

// declKind names a GenDecl token for the report.
func declKind(tok token.Token) string {
	switch tok {
	case token.CONST:
		return "const"
	case token.VAR:
		return "var"
	}
	return "declaration"
}

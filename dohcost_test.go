package dohcost

import (
	"context"
	"strings"
	"testing"
	"time"
)

func TestFacadeResolvers(t *testing.T) {
	env, err := NewEnvironment(EnvironmentConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer env.Close()

	var costs []Cost
	rec := CostFunc(func(c Cost) { costs = append(costs, c) })

	udp, err := env.UDP(Local, Options{Recorder: rec})
	if err != nil {
		t.Fatal(err)
	}
	defer udp.Close()
	dot, err := env.DoT(Cloudflare, Options{Persistent: true})
	if err != nil {
		t.Fatal(err)
	}
	defer dot.Close()
	dohH2, err := env.DoH(Google, Options{Persistent: true})
	if err != nil {
		t.Fatal(err)
	}
	defer dohH2.Close()
	dohH1, err := env.DoH(Cloudflare, Options{Persistent: true, HTTP1: true})
	if err != nil {
		t.Fatal(err)
	}
	defer dohH1.Close()

	for name, r := range map[string]Resolver{"udp": udp, "dot": dot, "doh2": dohH2, "doh1": dohH1} {
		resp, err := r.Exchange(context.Background(), NewQuery("www.example.com", TypeA))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(resp.Answers) != 1 {
			t.Errorf("%s: answers = %v", name, resp.Answers)
		}
	}
	if len(costs) != 1 {
		t.Errorf("recorded %d costs for the UDP resolver, want 1", len(costs))
	}
	if costs[0].WireCost().Packets != 2 {
		t.Errorf("udp packets = %d", costs[0].WireCost().Packets)
	}
}

func TestFacadeNewQueryCanonicalizes(t *testing.T) {
	q := NewQuery("Example.COM", TypeAAAA)
	if q.Question1().Name != "example.com." {
		t.Errorf("name = %v", q.Question1().Name)
	}
	if q.EDNS == nil {
		t.Error("query missing EDNS")
	}
}

func TestFacadeStartProxy(t *testing.T) {
	env, err := NewEnvironment(EnvironmentConfig{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	defer env.Close()

	p, err := env.StartProxy("proxy.dns", Cloudflare, Google)
	if err != nil {
		t.Fatal(err)
	}
	if env.ProxyChain("proxy.dns") == nil {
		t.Fatal("proxy chain not recorded")
	}

	// Query the proxy over DoH, trusting its own chain.
	c, err := env.ProxyDoH("proxy.dns", Options{Persistent: true})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 3; i++ {
		resp, err := c.Exchange(context.Background(), NewQuery("facade.example.com", TypeA))
		if err != nil {
			t.Fatal(err)
		}
		if len(resp.Answers) != 1 {
			t.Fatalf("answers = %v", resp.Answers)
		}
	}
	s := p.CacheStats()
	if s.Misses != 1 || s.Hits != 2 {
		t.Errorf("cache stats = %+v, want 1 miss + 2 hits", s)
	}
	ups := p.UpstreamStats()
	if len(ups) != 2 || ups[0].Exchanges != 1 {
		t.Errorf("upstream stats = %+v", ups)
	}
}

func TestFacadeFigure1(t *testing.T) {
	r := RunFigure1(1000, 4)
	if r.CDF.Len() != 1000 {
		t.Errorf("samples = %d", r.CDF.Len())
	}
	if RenderFigure1(r) == "" {
		t.Error("empty render")
	}
}

func TestFacadeRunScenario(t *testing.T) {
	if len(ImpairmentProfiles()) != 5 || len(ImpairmentProfileNames()) != 5 {
		t.Fatalf("profile registry: %v", ImpairmentProfileNames())
	}
	p, ok := LookupImpairmentProfile("satellite")
	if !ok || p.Link.Delay < 100*time.Millisecond {
		t.Fatalf("LookupImpairmentProfile(satellite) = %+v, %v", p, ok)
	}
	res, err := RunScenario(LoadScenario{
		Transports: []string{"udp", "doh"},
		Clients:    2,
		Queries:    16,
		Names:      4,
		Seed:       11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerTransport) != 2 {
		t.Fatalf("per-transport results = %d", len(res.PerTransport))
	}
	for _, tr := range res.PerTransport {
		if tr.Queries != 16 || tr.Failures != 0 {
			t.Errorf("%s: %+v", tr.Transport, tr)
		}
	}
	if out := RenderScenario(res); !strings.Contains(out, "udp") || !strings.Contains(out, "doh") {
		t.Errorf("render:\n%s", out)
	}
}

func TestFacadeSteeringAndCacheResilience(t *testing.T) {
	if p, err := ParseSteeringPolicy("hedged"); err != nil || p != SteerHedged {
		t.Fatalf("ParseSteeringPolicy(hedged) = %v, %v", p, err)
	}
	if _, err := ParseSteeringPolicy("nope"); err == nil {
		t.Fatal("bogus policy accepted")
	}

	// Compose the layers by hand through the facade: pool → steerer →
	// cache with serve-stale, against two in-process upstreams.
	env, err := NewEnvironment(EnvironmentConfig{Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	defer env.Close()
	pool, err := NewPool([]PoolUpstream{
		{Name: "cf", Dial: func(ctx context.Context) (Resolver, error) { return env.DoT(Cloudflare, Options{Persistent: true}) }},
		{Name: "go", Dial: func(ctx context.Context) (Resolver, error) { return env.DoT(Google, Options{Persistent: true}) }},
	}, PoolConfig{})
	if err != nil {
		t.Fatal(err)
	}
	st := NewSteerer(pool, SteeringConfig{Policy: SteerFastest})
	cached := WithCache(st, CacheServeStale(time.Minute), CachePrefetch(10*time.Second))
	defer cached.Close()

	for i := 0; i < 3; i++ {
		resp, err := cached.Exchange(context.Background(), NewQuery("steered.example.com", TypeA))
		if err != nil {
			t.Fatal(err)
		}
		if len(resp.Answers) != 1 {
			t.Fatalf("answers = %v", resp.Answers)
		}
	}
	rep := st.Report()
	if rep.Policy != "fastest" || len(rep.Upstreams) != 2 {
		t.Fatalf("steering report = %+v", rep)
	}
	var samples uint64
	for _, u := range rep.Upstreams {
		samples += u.Samples
	}
	if samples == 0 {
		t.Error("steerer scored no traffic")
	}
}
